#include "service/protocol.hpp"

#include <bit>
#include <cstring>

#include "common/assert.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc::service {

namespace {

constexpr char kMagic[4] = {'C', 'B', 'C', 'P'};
constexpr std::size_t kHeaderBytes = 18;
constexpr std::size_t kChecksumOffset = 10;

// ---- payload field helpers -------------------------------------------
//
// All reads funnel through these so every overrun or hostile length
// surfaces as ProtocolError, never as UB or an unbounded allocation.
// BitReader itself throws InvariantError past the end; decode_* wraps
// whole-message decoding in rethrow_malformed.

void put_string(BitWriter& w, const std::string& s) {
  w.write_varuint(s.size());
  for (const char c : s) {
    w.write(static_cast<std::uint8_t>(c), 8);
  }
}

std::string get_string(BitReader& r) {
  const std::uint64_t size = r.read_varuint();
  // Divide instead of multiplying: `size * 8` wraps for hostile lengths
  // >= 2^61, which would slip past the check and into the allocation.
  if (size > r.remaining() / 8) {
    throw ProtocolError(ProtoError::kMalformed,
                        "string length " + std::to_string(size) +
                            " exceeds the remaining payload");
  }
  std::string s(static_cast<std::size_t>(size), '\0');
  for (auto& c : s) {
    c = static_cast<char>(r.read(8));
  }
  return s;
}

/// Element count guarded against hostile values: each element needs at
/// least `min_bits_each` bits of payload left.
std::uint64_t get_count(BitReader& r, std::uint64_t min_bits_each) {
  const std::uint64_t count = r.read_varuint();
  if (count > r.remaining() / min_bits_each) {
    throw ProtocolError(ProtoError::kMalformed,
                        "element count " + std::to_string(count) +
                            " exceeds the remaining payload");
  }
  return count;
}

void put_type(BitWriter& w, MsgType type) {
  w.write_varuint(static_cast<std::uint64_t>(type));
}

[[noreturn]] void rethrow_malformed(const char* what_msg) {
  throw ProtocolError(ProtoError::kMalformed,
                      std::string("malformed payload: ") + what_msg);
}

void expect_consumed(const BitReader& r) {
  // A conforming encoder byte-pads nothing: bit length is exact.
  if (r.remaining() != 0) {
    throw ProtocolError(ProtoError::kMalformed,
                        std::to_string(r.remaining()) +
                            " trailing bits after the last field");
  }
}

// ---- per-message bodies ----------------------------------------------

void encode_submit_body(BitWriter& w, const SubmitRequest& s) {
  w.write_varuint(static_cast<std::uint64_t>(s.source));
  put_string(w, s.graph);
  w.write_bool(s.halve);
  w.write_bool(s.reliable);
  put_string(w, s.faults);
  w.write_varuint(s.max_rounds);
  w.write_varuint(s.threads);
  w.write_bool(s.legacy_engine);
  w.write_varuint(s.deadline_ms);
  w.write_varuint(s.attempt);
  put_string(w, s.stream_ns);
  w.write_varuint(s.stream_version);
  w.write_bool(s.incremental);
  w.write_varuint(s.backend);
  w.write_varuint(s.samples);
  w.write_varuint(s.sample_seed);
  w.write_varuint(s.engine);
}

SubmitRequest decode_submit_body(BitReader& r) {
  SubmitRequest s;
  const std::uint64_t source = r.read_varuint();
  if (source > static_cast<std::uint64_t>(GraphSource::kPath)) {
    throw ProtocolError(ProtoError::kMalformed,
                        "unknown graph source " + std::to_string(source));
  }
  s.source = static_cast<GraphSource>(source);
  s.graph = get_string(r);
  s.halve = r.read_bool();
  s.reliable = r.read_bool();
  s.faults = get_string(r);
  s.max_rounds = r.read_varuint();
  s.threads = static_cast<std::uint32_t>(r.read_varuint());
  s.legacy_engine = r.read_bool();
  s.deadline_ms = r.read_varuint();
  s.attempt = static_cast<std::uint32_t>(r.read_varuint());
  s.stream_ns = get_string(r);
  s.stream_version = r.read_varuint();
  s.incremental = r.read_bool();
  const std::uint64_t backend = r.read_varuint();
  if (backend > 4) {  // last BackendId (kSampled)
    throw ProtocolError(ProtoError::kMalformed,
                        "unknown backend " + std::to_string(backend));
  }
  s.backend = static_cast<std::uint8_t>(backend);
  const std::uint64_t samples = r.read_varuint();
  if (samples > UINT32_MAX) {
    throw ProtocolError(ProtoError::kMalformed,
                        "sample budget exceeds the node id width");
  }
  s.samples = static_cast<std::uint32_t>(samples);
  s.sample_seed = r.read_varuint();
  const std::uint64_t engine = r.read_varuint();
  if (engine > 2) {  // last EngineKind (kLegacy)
    throw ProtocolError(ProtoError::kMalformed,
                        "unknown engine " + std::to_string(engine));
  }
  s.engine = static_cast<std::uint8_t>(engine);
  return s;
}

// ---- v6 cluster bodies -----------------------------------------------

/// Opaque byte blob (snapshot containers, encoded result blocks):
/// varuint byte count + raw bytes, count guarded like get_string.
void put_bytes(BitWriter& w, const std::vector<std::uint8_t>& bytes) {
  w.write_varuint(bytes.size());
  for (const std::uint8_t b : bytes) {
    w.write(b, 8);
  }
}

std::vector<std::uint8_t> get_bytes(BitReader& r) {
  const std::uint64_t size = r.read_varuint();
  if (size > r.remaining() / 8) {
    throw ProtocolError(ProtoError::kMalformed,
                        "byte blob length " + std::to_string(size) +
                            " exceeds the remaining payload");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  for (auto& b : bytes) {
    b = static_cast<std::uint8_t>(r.read(8));
  }
  return bytes;
}

void encode_join_body(BitWriter& w, const JoinRequest& j) {
  put_string(w, j.worker_id);
  put_string(w, j.host);
  w.write_varuint(j.port);
}

JoinRequest decode_join_body(BitReader& r) {
  JoinRequest j;
  j.worker_id = get_string(r);
  j.host = get_string(r);
  const std::uint64_t port = r.read_varuint();
  if (port > UINT16_MAX) {
    throw ProtocolError(ProtoError::kMalformed,
                        "port " + std::to_string(port) + " out of range");
  }
  j.port = static_cast<std::uint16_t>(port);
  return j;
}

void encode_migrate_body(BitWriter& w, const MigrateRequest& m) {
  w.write_varuint(static_cast<std::uint64_t>(m.kind));
  w.write(m.fingerprint, 64);
  w.write_varuint(m.origin_job_id);
  put_string(w, m.origin_worker);
  encode_submit_body(w, m.submit);
  w.write_varuint(m.snapshot_round);
  put_bytes(w, m.snapshot_bytes);
  w.write_varuint(m.block_bits);
  if (m.block_bits > 0) {
    w.append(m.block_bytes.data(), static_cast<std::size_t>(m.block_bits));
  }
}

MigrateRequest decode_migrate_body(BitReader& r) {
  MigrateRequest m;
  const std::uint64_t kind = r.read_varuint();
  if (kind > static_cast<std::uint64_t>(MigrateKind::kResult)) {
    throw ProtocolError(ProtoError::kMalformed,
                        "unknown migrate kind " + std::to_string(kind));
  }
  m.kind = static_cast<MigrateKind>(kind);
  m.fingerprint = r.read(64);
  m.origin_job_id = r.read_varuint();
  m.origin_worker = get_string(r);
  m.submit = decode_submit_body(r);
  m.snapshot_round = r.read_varuint();
  m.snapshot_bytes = get_bytes(r);
  m.block_bits = r.read_varuint();
  if (m.block_bits > r.remaining()) {
    throw ProtocolError(ProtoError::kMalformed,
                        "migrated block length exceeds the payload");
  }
  m.block_bytes.assign((static_cast<std::size_t>(m.block_bits) + 7) / 8, 0);
  std::uint64_t left = m.block_bits;
  std::size_t byte = 0;
  while (left > 0) {
    const unsigned chunk = left >= 8 ? 8u : static_cast<unsigned>(left);
    m.block_bytes[byte++] = static_cast<std::uint8_t>(r.read(chunk));
    left -= chunk;
  }
  return m;
}

void encode_migrate_reply_body(BitWriter& w, const MigrateReply& m) {
  w.write_varuint(static_cast<std::uint64_t>(m.outcome));
  w.write_varuint(m.job_id);
  w.write(m.fingerprint, 64);
  put_string(w, m.detail);
}

MigrateReply decode_migrate_reply_body(BitReader& r) {
  MigrateReply m;
  const std::uint64_t o = r.read_varuint();
  if (o > static_cast<std::uint64_t>(MigrateOutcome::kDraining)) {
    throw ProtocolError(ProtoError::kMalformed, "unknown migrate outcome");
  }
  m.outcome = static_cast<MigrateOutcome>(o);
  m.job_id = r.read_varuint();
  m.fingerprint = r.read(64);
  m.detail = get_string(r);
  return m;
}

void encode_lookup_reply_body(BitWriter& w, const LookupReply& m) {
  w.write_bool(m.found);
  w.write(m.fingerprint, 64);
  if (m.found) {
    w.write_varuint(m.block_bits);
    w.append(m.block_bytes.data(), static_cast<std::size_t>(m.block_bits));
  }
}

LookupReply decode_lookup_reply_body(BitReader& r) {
  LookupReply m;
  m.found = r.read_bool();
  m.fingerprint = r.read(64);
  if (m.found) {
    m.block_bits = r.read_varuint();
    if (m.block_bits > r.remaining()) {
      throw ProtocolError(ProtoError::kMalformed,
                          "lookup block length exceeds the payload");
    }
    m.block_bytes.assign((static_cast<std::size_t>(m.block_bits) + 7) / 8, 0);
    std::uint64_t left = m.block_bits;
    std::size_t byte = 0;
    while (left > 0) {
      const unsigned chunk = left >= 8 ? 8u : static_cast<unsigned>(left);
      m.block_bytes[byte++] = static_cast<std::uint8_t>(r.read(chunk));
      left -= chunk;
    }
  }
  return m;
}

void encode_mutate_body(BitWriter& w, const MutateRequest& m) {
  put_string(w, m.ns);
  w.write_varuint(m.base_version);
  put_string(w, m.base_graph);
  w.write_varuint(m.ops.size());
  for (const MutateOp& op : m.ops) {
    w.write_varuint(op.kind);
    w.write_varuint(op.u);
    w.write_varuint(op.v);
  }
}

MutateRequest decode_mutate_body(BitReader& r) {
  MutateRequest m;
  m.ns = get_string(r);
  m.base_version = r.read_varuint();
  m.base_graph = get_string(r);
  // Each op is three varuints — at least 6 bits even in the tightest
  // imaginable encoding, so hostile counts cannot out-allocate the
  // payload they rode in on.
  const std::uint64_t count = get_count(r, 6);
  m.ops.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    MutateOp op;
    const std::uint64_t kind = r.read_varuint();
    if (kind < 1 || kind > 2) {
      throw ProtocolError(ProtoError::kMalformed,
                          "unknown edge op kind " + std::to_string(kind));
    }
    op.kind = static_cast<std::uint8_t>(kind);
    const std::uint64_t u = r.read_varuint();
    const std::uint64_t v = r.read_varuint();
    if (u > UINT32_MAX || v > UINT32_MAX) {
      throw ProtocolError(ProtoError::kMalformed,
                          "edge op endpoint exceeds the node id width");
    }
    op.u = static_cast<std::uint32_t>(u);
    op.v = static_cast<std::uint32_t>(v);
    m.ops.push_back(op);
  }
  return m;
}

void encode_mutate_reply_body(BitWriter& w, const MutateReply& m) {
  w.write_varuint(static_cast<std::uint64_t>(m.outcome));
  w.write_varuint(m.version);
  w.write(m.fingerprint, 64);
  w.write_varuint(m.applied);
  w.write_varuint(m.dropped);
  put_string(w, m.detail);
}

MutateReply decode_mutate_reply_body(BitReader& r) {
  MutateReply m;
  const std::uint64_t o = r.read_varuint();
  if (o > static_cast<std::uint64_t>(MutateOutcome::kDraining)) {
    throw ProtocolError(ProtoError::kMalformed, "unknown mutate outcome");
  }
  m.outcome = static_cast<MutateOutcome>(o);
  m.version = r.read_varuint();
  m.fingerprint = r.read(64);
  m.applied = r.read_varuint();
  m.dropped = r.read_varuint();
  m.detail = get_string(r);
  return m;
}

void encode_submit_reply_body(BitWriter& w, const SubmitReply& m) {
  w.write_varuint(static_cast<std::uint64_t>(m.disposition));
  w.write_varuint(m.job_id);
  w.write(m.fingerprint, 64);
  put_string(w, m.detail);
  w.write_varuint(m.backend);
  w.write_bool(m.downgraded);
}

SubmitReply decode_submit_reply_body(BitReader& r) {
  SubmitReply m;
  const std::uint64_t d = r.read_varuint();
  if (d > static_cast<std::uint64_t>(SubmitDisposition::kDeadline)) {
    throw ProtocolError(ProtoError::kMalformed, "unknown submit disposition");
  }
  m.disposition = static_cast<SubmitDisposition>(d);
  m.job_id = r.read_varuint();
  m.fingerprint = r.read(64);
  m.detail = get_string(r);
  const std::uint64_t backend = r.read_varuint();
  if (backend > 4) {  // last BackendId (kSampled)
    throw ProtocolError(ProtoError::kMalformed,
                        "unknown backend " + std::to_string(backend));
  }
  m.backend = static_cast<std::uint8_t>(backend);
  m.downgraded = r.read_bool();
  return m;
}

JobState checked_job_state(std::uint64_t raw) {
  if (raw > static_cast<std::uint64_t>(JobState::kUnknown)) {
    throw ProtocolError(ProtoError::kMalformed, "unknown job state");
  }
  return static_cast<JobState>(raw);
}

void encode_status_reply_body(BitWriter& w, const StatusReply& m) {
  w.write_varuint(static_cast<std::uint64_t>(m.state));
  w.write_varuint(m.job_id);
  w.write(m.fingerprint, 64);
  w.write_varuint(m.queue_position);
  put_string(w, m.detail);
  put_string(w, m.phase_timeline);
}

StatusReply decode_status_reply_body(BitReader& r) {
  StatusReply m;
  m.state = checked_job_state(r.read_varuint());
  m.job_id = r.read_varuint();
  m.fingerprint = r.read(64);
  m.queue_position = static_cast<std::uint32_t>(r.read_varuint());
  m.detail = get_string(r);
  m.phase_timeline = get_string(r);
  return m;
}

void encode_result_reply_body(BitWriter& w, const ResultReply& m) {
  w.write_bool(m.ready);
  w.write_varuint(static_cast<std::uint64_t>(m.state));
  w.write_bool(m.from_cache);
  w.write(m.fingerprint, 64);
  put_string(w, m.detail);
  if (m.ready) {
    w.write_varuint(m.block_bits);
    w.append(m.block_bytes.data(), static_cast<std::size_t>(m.block_bits));
  }
}

ResultReply decode_result_reply_body(BitReader& r) {
  ResultReply m;
  m.ready = r.read_bool();
  m.state = checked_job_state(r.read_varuint());
  m.from_cache = r.read_bool();
  m.fingerprint = r.read(64);
  m.detail = get_string(r);
  if (m.ready) {
    m.block_bits = r.read_varuint();
    if (m.block_bits > r.remaining()) {
      throw ProtocolError(ProtoError::kMalformed,
                          "result block length exceeds the payload");
    }
    m.block_bytes.assign((static_cast<std::size_t>(m.block_bits) + 7) / 8, 0);
    std::uint64_t left = m.block_bits;
    std::size_t byte = 0;
    while (left > 0) {
      const unsigned chunk = left >= 8 ? 8u : static_cast<unsigned>(left);
      m.block_bytes[byte++] = static_cast<std::uint8_t>(r.read(chunk));
      left -= chunk;
    }
  }
  return m;
}

void encode_cancel_reply_body(BitWriter& w, const CancelReply& m) {
  w.write_varuint(static_cast<std::uint64_t>(m.outcome));
}

CancelReply decode_cancel_reply_body(BitReader& r) {
  CancelReply m;
  const std::uint64_t o = r.read_varuint();
  if (o > static_cast<std::uint64_t>(CancelOutcome::kRequested)) {
    throw ProtocolError(ProtoError::kMalformed, "unknown cancel outcome");
  }
  m.outcome = static_cast<CancelOutcome>(o);
  return m;
}

void put_gauge(BitWriter& w, double value) {
  w.write(std::bit_cast<std::uint64_t>(value), 64);
}

double get_gauge(BitReader& r) { return std::bit_cast<double>(r.read(64)); }

void encode_stats_reply_body(BitWriter& w, const StatsReply& m) {
  w.write_varuint(m.uptime_ms);
  w.write_varuint(m.submits);
  w.write_varuint(m.cache_hits);
  w.write_varuint(m.cache_misses);
  w.write_varuint(m.coalesced);
  w.write_varuint(m.busy_rejections);
  w.write_varuint(m.draining_rejections);
  w.write_varuint(m.jobs_completed);
  w.write_varuint(m.jobs_failed);
  w.write_varuint(m.jobs_cancelled);
  w.write_varuint(m.jobs_suspended);
  w.write_varuint(m.jobs_resumed);
  w.write_varuint(m.protocol_errors);
  w.write_varuint(m.queue_depth);
  w.write_varuint(m.running);
  w.write_varuint(m.workers);
  w.write_varuint(m.cache_entries);
  w.write_varuint(m.cache_evictions);
  w.write_varuint(m.retried_submits);
  w.write_varuint(m.deadline_rejections);
  w.write_varuint(m.deadline_expired);
  w.write_varuint(m.quarantined_files);
  put_gauge(w, m.qps);
  put_gauge(w, m.worker_utilization);
  put_gauge(w, m.latency_p50_ms);
  put_gauge(w, m.latency_p90_ms);
  put_gauge(w, m.latency_p99_ms);
  w.write_varuint(m.mutations_applied);
  w.write_varuint(m.graph_version);
  w.write_varuint(m.dirty_sources_rerun);
  w.write_varuint(m.cache_invalidations);
  w.write_varuint(m.backend_downgrades);
  w.write_varuint(m.migrated_out);
  w.write_varuint(m.migrated_in);
  w.write_varuint(m.lookups_served);
}

StatsReply decode_stats_reply_body(BitReader& r) {
  StatsReply m;
  m.uptime_ms = r.read_varuint();
  m.submits = r.read_varuint();
  m.cache_hits = r.read_varuint();
  m.cache_misses = r.read_varuint();
  m.coalesced = r.read_varuint();
  m.busy_rejections = r.read_varuint();
  m.draining_rejections = r.read_varuint();
  m.jobs_completed = r.read_varuint();
  m.jobs_failed = r.read_varuint();
  m.jobs_cancelled = r.read_varuint();
  m.jobs_suspended = r.read_varuint();
  m.jobs_resumed = r.read_varuint();
  m.protocol_errors = r.read_varuint();
  m.queue_depth = r.read_varuint();
  m.running = r.read_varuint();
  m.workers = r.read_varuint();
  m.cache_entries = r.read_varuint();
  m.cache_evictions = r.read_varuint();
  m.retried_submits = r.read_varuint();
  m.deadline_rejections = r.read_varuint();
  m.deadline_expired = r.read_varuint();
  m.quarantined_files = r.read_varuint();
  m.qps = get_gauge(r);
  m.worker_utilization = get_gauge(r);
  m.latency_p50_ms = get_gauge(r);
  m.latency_p90_ms = get_gauge(r);
  m.latency_p99_ms = get_gauge(r);
  m.mutations_applied = r.read_varuint();
  m.graph_version = r.read_varuint();
  m.dirty_sources_rerun = r.read_varuint();
  m.cache_invalidations = r.read_varuint();
  m.backend_downgrades = r.read_varuint();
  m.migrated_out = r.read_varuint();
  m.migrated_in = r.read_varuint();
  m.lookups_served = r.read_varuint();
  return m;
}

void encode_error_body(BitWriter& w, const ErrorReply& m) {
  w.write_varuint(static_cast<std::uint64_t>(m.code));
  put_string(w, m.message);
}

ErrorReply decode_error_body(BitReader& r) {
  ErrorReply m;
  const std::uint64_t c = r.read_varuint();
  if (c < 1 || c > static_cast<std::uint64_t>(ProtoError::kCorrupted)) {
    throw ProtocolError(ProtoError::kMalformed, "unknown error code");
  }
  m.code = static_cast<ProtoError>(c);
  m.message = get_string(r);
  return m;
}

}  // namespace

const char* to_string(ProtoError code) {
  switch (code) {
    case ProtoError::kBadMagic:
      return "bad-magic";
    case ProtoError::kBadVersion:
      return "bad-version";
    case ProtoError::kOversized:
      return "oversized";
    case ProtoError::kMalformed:
      return "malformed";
    case ProtoError::kUnknownType:
      return "unknown-type";
    case ProtoError::kBadRequest:
      return "bad-request";
    case ProtoError::kCorrupted:
      return "corrupted";
  }
  return "unknown";
}

const char* to_string(SubmitDisposition d) {
  switch (d) {
    case SubmitDisposition::kQueued:
      return "queued";
    case SubmitDisposition::kCacheHit:
      return "cache-hit";
    case SubmitDisposition::kCoalesced:
      return "coalesced";
    case SubmitDisposition::kBusy:
      return "busy";
    case SubmitDisposition::kDraining:
      return "draining";
    case SubmitDisposition::kRejected:
      return "rejected";
    case SubmitDisposition::kDeadline:
      return "deadline";
  }
  return "unknown";
}

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kSuspended:
      return "suspended";
    case JobState::kUnknown:
      return "unknown";
  }
  return "unknown";
}

const char* to_string(MutateOutcome o) {
  switch (o) {
    case MutateOutcome::kApplied:
      return "applied";
    case MutateOutcome::kCreated:
      return "created";
    case MutateOutcome::kVersionConflict:
      return "version-conflict";
    case MutateOutcome::kRejected:
      return "rejected";
    case MutateOutcome::kDraining:
      return "draining";
  }
  return "unknown";
}

const char* to_string(MigrateOutcome o) {
  switch (o) {
    case MigrateOutcome::kAccepted:
      return "accepted";
    case MigrateOutcome::kCoalesced:
      return "coalesced";
    case MigrateOutcome::kRejected:
      return "rejected";
    case MigrateOutcome::kDraining:
      return "draining";
  }
  return "unknown";
}

const char* to_string(CancelOutcome o) {
  switch (o) {
    case CancelOutcome::kCancelled:
      return "cancelled";
    case CancelOutcome::kTooLate:
      return "too-late";
    case CancelOutcome::kNotFound:
      return "not-found";
    case CancelOutcome::kRequested:
      return "requested";
  }
  return "unknown";
}

// ------------------------------------------------------------ framing

std::vector<std::uint8_t> frame_bytes(const BitWriter& payload) {
  const std::uint64_t bits = payload.bit_size();
  const std::uint64_t bytes = (bits + 7) / 8;
  CBC_EXPECTS(bytes <= kMaxFramePayloadBytes,
              "frame payload exceeds the protocol maximum");
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + static_cast<std::size_t>(bytes));
  out.insert(out.end(), kMagic, kMagic + sizeof(kMagic));
  out.push_back(static_cast<std::uint8_t>(kProtocolVersion & 0xff));
  out.push_back(static_cast<std::uint8_t>(kProtocolVersion >> 8));
  for (unsigned i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xff));
  }
  const std::uint64_t checksum =
      fnv1a(payload.data(), static_cast<std::size_t>(bytes));
  for (unsigned i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((checksum >> (8 * i)) & 0xff));
  }
  out.insert(out.end(), payload.data(),
             payload.data() + static_cast<std::size_t>(bytes));
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<FramePayload> FrameDecoder::next() {
  // Validate each header field as soon as its bytes arrive, so hostile
  // prefixes fail fast instead of waiting for a full header that will
  // never come.
  if (buffer_.size() >= sizeof(kMagic) &&
      std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
    throw ProtocolError(ProtoError::kBadMagic,
                        "frame does not start with CBCP");
  }
  if (buffer_.size() >= 6) {
    const std::uint16_t version = static_cast<std::uint16_t>(
        buffer_[4] | (static_cast<std::uint16_t>(buffer_[5]) << 8));
    if (version != kProtocolVersion) {
      throw ProtocolError(ProtoError::kBadVersion,
                          "unsupported protocol version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kProtocolVersion) + ")");
    }
  }
  if (buffer_.size() < kHeaderBytes) {
    return std::nullopt;
  }
  std::uint64_t bits = 0;
  for (unsigned i = 0; i < 4; ++i) {
    bits |= static_cast<std::uint64_t>(buffer_[6 + i]) << (8 * i);
  }
  const std::uint64_t payload_bytes = (bits + 7) / 8;
  if (payload_bytes > max_payload_bytes_) {
    throw ProtocolError(ProtoError::kOversized,
                        "frame payload of " + std::to_string(payload_bytes) +
                            " bytes exceeds the " +
                            std::to_string(max_payload_bytes_) + "-byte cap");
  }
  if (buffer_.size() < kHeaderBytes + payload_bytes) {
    return std::nullopt;
  }
  std::uint64_t claimed = 0;
  for (unsigned i = 0; i < 8; ++i) {
    claimed |= static_cast<std::uint64_t>(buffer_[kChecksumOffset + i])
               << (8 * i);
  }
  const std::uint64_t actual = fnv1a(buffer_.data() + kHeaderBytes,
                                     static_cast<std::size_t>(payload_bytes));
  if (claimed != actual) {
    throw ProtocolError(ProtoError::kCorrupted,
                        "frame checksum mismatch: payload bytes were "
                        "corrupted in transit");
  }
  FramePayload payload;
  payload.bits = bits;
  payload.bytes.assign(
      buffer_.begin() + kHeaderBytes,
      buffer_.begin() +
          static_cast<std::ptrdiff_t>(kHeaderBytes + payload_bytes));
  buffer_.erase(buffer_.begin(),
                buffer_.begin() +
                    static_cast<std::ptrdiff_t>(kHeaderBytes + payload_bytes));
  return payload;
}

// --------------------------------------------------- encode / decode

BitWriter encode_request(const Request& request) {
  BitWriter w;
  put_type(w, request.type);
  switch (request.type) {
    case MsgType::kSubmit:
      encode_submit_body(w, request.submit);
      break;
    case MsgType::kMutate:
      encode_mutate_body(w, request.mutate);
      break;
    case MsgType::kJoin:
      encode_join_body(w, request.join);
      break;
    case MsgType::kLeave:
      put_string(w, request.leave.worker_id);
      break;
    case MsgType::kMigrate:
      encode_migrate_body(w, request.migrate);
      break;
    case MsgType::kLookup:
      w.write(request.lookup.fingerprint, 64);
      break;
    case MsgType::kStatus:
    case MsgType::kResult:
    case MsgType::kCancel:
      w.write_varuint(request.job.job_id);
      break;
    case MsgType::kStats:
    case MsgType::kShutdown:
      break;
    default:
      CBC_EXPECTS(false, "encode_request: not a request type");
  }
  return w;
}

Request decode_request(const FramePayload& payload) {
  BitReader r = payload.reader();
  try {
    Request request;
    const std::uint64_t raw_type = r.read_varuint();
    switch (raw_type) {
      case static_cast<std::uint64_t>(MsgType::kSubmit):
        request.type = MsgType::kSubmit;
        request.submit = decode_submit_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kMutate):
        request.type = MsgType::kMutate;
        request.mutate = decode_mutate_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kJoin):
        request.type = MsgType::kJoin;
        request.join = decode_join_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kLeave):
        request.type = MsgType::kLeave;
        request.leave.worker_id = get_string(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kMigrate):
        request.type = MsgType::kMigrate;
        request.migrate = decode_migrate_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kLookup):
        request.type = MsgType::kLookup;
        request.lookup.fingerprint = r.read(64);
        break;
      case static_cast<std::uint64_t>(MsgType::kStatus):
      case static_cast<std::uint64_t>(MsgType::kResult):
      case static_cast<std::uint64_t>(MsgType::kCancel):
        request.type = static_cast<MsgType>(raw_type);
        request.job.job_id = r.read_varuint();
        break;
      case static_cast<std::uint64_t>(MsgType::kStats):
      case static_cast<std::uint64_t>(MsgType::kShutdown):
        request.type = static_cast<MsgType>(raw_type);
        break;
      default:
        throw ProtocolError(ProtoError::kUnknownType,
                            "unknown request type " +
                                std::to_string(raw_type));
    }
    expect_consumed(r);
    return request;
  } catch (const InvariantError& e) {
    // BitReader overruns surface as InvariantError; on a socket they mean
    // a truncated or garbage payload, which is the peer's fault.
    rethrow_malformed(e.what());
  }
}

BitWriter encode_reply(const Reply& reply) {
  BitWriter w;
  put_type(w, reply.type);
  switch (reply.type) {
    case MsgType::kSubmitReply:
      encode_submit_reply_body(w, reply.submit);
      break;
    case MsgType::kStatusReply:
      encode_status_reply_body(w, reply.status);
      break;
    case MsgType::kResultReply:
      encode_result_reply_body(w, reply.result);
      break;
    case MsgType::kCancelReply:
      encode_cancel_reply_body(w, reply.cancel);
      break;
    case MsgType::kStatsReply:
      encode_stats_reply_body(w, reply.stats);
      break;
    case MsgType::kShutdownReply:
      w.write_bool(reply.shutdown.draining);
      break;
    case MsgType::kError:
      encode_error_body(w, reply.error);
      break;
    case MsgType::kMutateReply:
      encode_mutate_reply_body(w, reply.mutate);
      break;
    case MsgType::kJoinReply:
      w.write_bool(reply.join.accepted);
      put_string(w, reply.join.detail);
      break;
    case MsgType::kLeaveReply:
      w.write_bool(reply.leave.removed);
      break;
    case MsgType::kMigrateReply:
      encode_migrate_reply_body(w, reply.migrate);
      break;
    case MsgType::kLookupReply:
      encode_lookup_reply_body(w, reply.lookup);
      break;
    default:
      CBC_EXPECTS(false, "encode_reply: not a reply type");
  }
  return w;
}

Reply decode_reply(const FramePayload& payload) {
  BitReader r = payload.reader();
  try {
    Reply reply;
    const std::uint64_t raw_type = r.read_varuint();
    switch (raw_type) {
      case static_cast<std::uint64_t>(MsgType::kSubmitReply):
        reply.type = MsgType::kSubmitReply;
        reply.submit = decode_submit_reply_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kStatusReply):
        reply.type = MsgType::kStatusReply;
        reply.status = decode_status_reply_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kResultReply):
        reply.type = MsgType::kResultReply;
        reply.result = decode_result_reply_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kCancelReply):
        reply.type = MsgType::kCancelReply;
        reply.cancel = decode_cancel_reply_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kStatsReply):
        reply.type = MsgType::kStatsReply;
        reply.stats = decode_stats_reply_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kShutdownReply):
        reply.type = MsgType::kShutdownReply;
        reply.shutdown.draining = r.read_bool();
        break;
      case static_cast<std::uint64_t>(MsgType::kError):
        reply.type = MsgType::kError;
        reply.error = decode_error_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kMutateReply):
        reply.type = MsgType::kMutateReply;
        reply.mutate = decode_mutate_reply_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kJoinReply):
        reply.type = MsgType::kJoinReply;
        reply.join.accepted = r.read_bool();
        reply.join.detail = get_string(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kLeaveReply):
        reply.type = MsgType::kLeaveReply;
        reply.leave.removed = r.read_bool();
        break;
      case static_cast<std::uint64_t>(MsgType::kMigrateReply):
        reply.type = MsgType::kMigrateReply;
        reply.migrate = decode_migrate_reply_body(r);
        break;
      case static_cast<std::uint64_t>(MsgType::kLookupReply):
        reply.type = MsgType::kLookupReply;
        reply.lookup = decode_lookup_reply_body(r);
        break;
      default:
        throw ProtocolError(ProtoError::kUnknownType,
                            "unknown reply type " + std::to_string(raw_type));
    }
    expect_consumed(r);
    return reply;
  } catch (const InvariantError& e) {
    rethrow_malformed(e.what());
  }
}

BitWriter encode_result_block(const ResultBlock& block) {
  BitWriter w;
  w.write_varuint(block.run_status);
  put_string(w, block.detail);
  w.write_varuint(block.rounds);
  w.write_varuint(block.diameter);
  w.write_varuint(block.total_bits);
  w.write_varuint(block.total_physical_messages);
  const std::uint64_t n = block.betweenness.size();
  CBC_EXPECTS(block.closeness.size() == n && block.graph_centrality.size() == n &&
                  block.stress.size() == n && block.eccentricities.size() == n,
              "result block arrays must agree on N");
  w.write_varuint(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    snap::put_double(w, block.betweenness[v]);
    snap::put_double(w, block.closeness[v]);
    snap::put_double(w, block.graph_centrality[v]);
    snap::put_long_double(w, block.stress[v]);
    w.write_varuint(block.eccentricities[v]);
  }
  return w;
}

ResultBlock decode_result_block(BitReader& r) {
  try {
    ResultBlock block;
    block.run_status = static_cast<std::uint8_t>(r.read_varuint());
    block.detail = get_string(r);
    block.rounds = r.read_varuint();
    block.diameter = static_cast<std::uint32_t>(r.read_varuint());
    block.total_bits = r.read_varuint();
    block.total_physical_messages = r.read_varuint();
    // Each node carries 3 doubles + a long double + an eccentricity —
    // well over 256 bits; 200 is a safe hostile-count floor.
    const std::uint64_t n = get_count(r, 200);
    block.betweenness.reserve(static_cast<std::size_t>(n));
    block.closeness.reserve(static_cast<std::size_t>(n));
    block.graph_centrality.reserve(static_cast<std::size_t>(n));
    block.stress.reserve(static_cast<std::size_t>(n));
    block.eccentricities.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t v = 0; v < n; ++v) {
      block.betweenness.push_back(snap::get_double(r));
      block.closeness.push_back(snap::get_double(r));
      block.graph_centrality.push_back(snap::get_double(r));
      block.stress.push_back(snap::get_long_double(r));
      block.eccentricities.push_back(
          static_cast<std::uint32_t>(r.read_varuint()));
    }
    return block;
  } catch (const InvariantError& e) {
    rethrow_malformed(e.what());
  }
}

Request make_submit(const SubmitRequest& submit) {
  Request request;
  request.type = MsgType::kSubmit;
  request.submit = submit;
  return request;
}

Request make_job_request(MsgType type, std::uint64_t job_id) {
  CBC_EXPECTS(type == MsgType::kStatus || type == MsgType::kResult ||
                  type == MsgType::kCancel,
              "make_job_request: not a job-addressed type");
  Request request;
  request.type = type;
  request.job.job_id = job_id;
  return request;
}

Request make_plain(MsgType type) {
  CBC_EXPECTS(type == MsgType::kStats || type == MsgType::kShutdown,
              "make_plain: not a bodyless type");
  Request request;
  request.type = type;
  return request;
}

Request make_mutate(const MutateRequest& mutate) {
  Request request;
  request.type = MsgType::kMutate;
  request.mutate = mutate;
  return request;
}

Request make_join(const JoinRequest& join) {
  Request request;
  request.type = MsgType::kJoin;
  request.join = join;
  return request;
}

Request make_leave(const LeaveRequest& leave) {
  Request request;
  request.type = MsgType::kLeave;
  request.leave = leave;
  return request;
}

Request make_migrate(const MigrateRequest& migrate) {
  Request request;
  request.type = MsgType::kMigrate;
  request.migrate = migrate;
  return request;
}

Request make_lookup(std::uint64_t fingerprint) {
  Request request;
  request.type = MsgType::kLookup;
  request.lookup.fingerprint = fingerprint;
  return request;
}

}  // namespace congestbc::service
