#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace congestbc::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

void Client::connect(const std::string& host, std::uint16_t port,
                     int timeout_ms) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket()");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("bad daemon address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("connect()");
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::send_frame(const Request& request) {
  const std::vector<std::uint8_t> bytes = frame_bytes(encode_request(request));
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throw_errno("send()");
  }
}

Reply Client::read_reply() {
  while (true) {
    if (auto frame = decoder_.next()) {
      return decode_reply(*frame);
    }
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      throw std::runtime_error("daemon closed the connection");
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("timed out waiting for the daemon's reply");
    }
    throw_errno("recv()");
  }
}

Reply Client::call(const Request& request) {
  if (fd_ < 0) {
    throw std::runtime_error("client is not connected");
  }
  send_frame(request);
  Reply reply = read_reply();
  if (reply.type == MsgType::kError) {
    throw ProtocolError(reply.error.code, reply.error.message);
  }
  return reply;
}

SubmitReply Client::submit(const SubmitRequest& request) {
  return call(make_submit(request)).submit;
}

StatusReply Client::status(std::uint64_t job_id) {
  return call(make_job_request(MsgType::kStatus, job_id)).status;
}

ResultReply Client::result(std::uint64_t job_id) {
  return call(make_job_request(MsgType::kResult, job_id)).result;
}

CancelReply Client::cancel(std::uint64_t job_id) {
  return call(make_job_request(MsgType::kCancel, job_id)).cancel;
}

StatsReply Client::stats() { return call(make_plain(MsgType::kStats)).stats; }

ShutdownReply Client::shutdown() {
  return call(make_plain(MsgType::kShutdown)).shutdown;
}

ResultReply Client::wait_result(std::uint64_t job_id, int poll_ms,
                                int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    ResultReply reply = result(job_id);
    if (reply.ready || (reply.state != JobState::kQueued &&
                        reply.state != JobState::kRunning)) {
      return reply;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("timed out waiting for job " +
                               std::to_string(job_id));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

}  // namespace congestbc::service
