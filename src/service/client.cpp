#include "service/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace congestbc::service {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Remaining poll budget in ms; 0 the instant the deadline passes, so a
/// poll() woken by EINTR re-enters with the shrunken remainder rather
/// than the original timeout.
int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) {
    return 0;
  }
  return left.count() > 3600'000 ? 3600'000 : static_cast<int>(left.count());
}

/// poll() one fd for `events` until the deadline.  Returns revents, or
/// throws on timeout / poll failure.  EINTR recomputes the remainder.
short poll_until(int fd, short events, Clock::time_point deadline,
                 const char* what) {
  while (true) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int budget = remaining_ms(deadline);
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) {
      return pfd.revents;
    }
    if (rc == 0) {
      if (budget == 0) {
        throw std::runtime_error(std::string(what) + ": deadline exceeded");
      }
      continue;  // spurious zero with budget left: re-poll the remainder
    }
    if (errno == EINTR) {
      continue;
    }
    throw_errno(std::string(what) + ": poll()");
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder();
}

void Client::connect(const std::string& host, std::uint16_t port,
                     int timeout_ms) {
  close();
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw_errno("socket()");
  }
  try {
    set_nonblocking(fd_);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
    if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("bad daemon address: " + host);
    }
    int rc;
    do {
      rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      if (errno != EINPROGRESS) {
        throw_errno("connect()");
      }
      poll_until(fd_, POLLOUT, deadline, "connect()");
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
        throw_errno("getsockopt(SO_ERROR)");
      }
      if (err != 0) {
        errno = err;
        throw_errno("connect()");
      }
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  } catch (...) {
    close();
    throw;
  }
  io_timeout_ms_ = timeout_ms;
}

void Client::send_frame(const Request& request, Deadline deadline) {
  const std::vector<std::uint8_t> bytes = frame_bytes(encode_request(request));
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      poll_until(fd_, POLLOUT, deadline, "send()");
      continue;
    }
    throw_errno("send()");
  }
}

Reply Client::read_reply(Deadline deadline) {
  while (true) {
    try {
      if (auto frame = decoder_.next()) {
        return decode_reply(*frame);
      }
    } catch (const ProtocolError& e) {
      // A reply header whose magic or version bytes do not parse is wire
      // corruption from this side: the daemon already accepted our frame
      // on this connection, so "wrong version" cannot be a genuine
      // version dispute.  Genuine disputes arrive as typed ERROR replies
      // and keep their original code.  Reclassifying lets the retry
      // layer treat a garbled header like any other torn frame.
      if (e.code() == ProtoError::kBadMagic ||
          e.code() == ProtoError::kBadVersion) {
        throw ProtocolError(ProtoError::kCorrupted,
                            std::string("reply frame header corrupted: ") +
                                e.what());
      }
      throw;
    }
    std::uint8_t buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      throw std::runtime_error("daemon closed the connection");
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poll_until(fd_, POLLIN, deadline, "recv()");
      continue;
    }
    throw_errno("recv()");
  }
}

Reply Client::call(const Request& request) {
  if (fd_ < 0) {
    throw std::runtime_error("client is not connected");
  }
  // One deadline covers the whole round trip: partial writes and
  // trickled replies spend from the same budget.
  const Deadline deadline =
      Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  send_frame(request, deadline);
  Reply reply = read_reply(deadline);
  if (reply.type == MsgType::kError) {
    throw ProtocolError(reply.error.code, reply.error.message);
  }
  return reply;
}

SubmitReply Client::submit(const SubmitRequest& request) {
  return call(make_submit(request)).submit;
}

MutateReply Client::mutate(const MutateRequest& request) {
  return call(make_mutate(request)).mutate;
}

StatusReply Client::status(std::uint64_t job_id) {
  return call(make_job_request(MsgType::kStatus, job_id)).status;
}

ResultReply Client::result(std::uint64_t job_id) {
  return call(make_job_request(MsgType::kResult, job_id)).result;
}

CancelReply Client::cancel(std::uint64_t job_id) {
  return call(make_job_request(MsgType::kCancel, job_id)).cancel;
}

StatsReply Client::stats() { return call(make_plain(MsgType::kStats)).stats; }

JoinReply Client::join(const JoinRequest& request) {
  return call(make_join(request)).join;
}

LeaveReply Client::leave(const LeaveRequest& request) {
  return call(make_leave(request)).leave;
}

MigrateReply Client::migrate(const MigrateRequest& request) {
  return call(make_migrate(request)).migrate;
}

LookupReply Client::lookup(std::uint64_t fingerprint) {
  return call(make_lookup(fingerprint)).lookup;
}

ShutdownReply Client::shutdown() {
  return call(make_plain(MsgType::kShutdown)).shutdown;
}

ResultReply Client::wait_result(std::uint64_t job_id, int poll_ms,
                                int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    ResultReply reply = result(job_id);
    if (reply.ready || (reply.state != JobState::kQueued &&
                        reply.state != JobState::kRunning)) {
      return reply;
    }
    if (Clock::now() >= deadline) {
      throw std::runtime_error("timed out waiting for job " +
                               std::to_string(job_id));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

}  // namespace congestbc::service
