#include "service/cache.hpp"

#include <utility>

namespace congestbc::service {

std::shared_ptr<const CachedResult> LruResultCache::get(
    std::uint64_t fingerprint) {
  const auto it = map_.find(fingerprint);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

std::shared_ptr<const CachedResult> LruResultCache::peek(
    std::uint64_t fingerprint) const {
  const auto it = map_.find(fingerprint);
  return it == map_.end() ? nullptr : it->second->result;
}

void LruResultCache::put(std::uint64_t fingerprint,
                         std::shared_ptr<const CachedResult> result) {
  if (capacity_ == 0) {
    return;
  }
  const auto it = map_.find(fingerprint);
  if (it != map_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{fingerprint, std::move(result)});
  map_.emplace(fingerprint, lru_.begin());
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    ++evictions_;
  }
}

bool LruResultCache::erase(std::uint64_t fingerprint) {
  const auto it = map_.find(fingerprint);
  if (it == map_.end()) {
    return false;
  }
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

std::vector<std::uint64_t> LruResultCache::keys_lru_order() const {
  std::vector<std::uint64_t> keys;
  keys.reserve(lru_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    keys.push_back(it->fingerprint);
  }
  return keys;
}

}  // namespace congestbc::service
