// Wire protocol of the BC serving daemon (congestbcd).
//
// Transport: a TCP byte stream carrying length-prefixed frames.  Each
// frame is a fixed 18-byte header followed by a bit-exact payload
// serialized with the same BitWriter/BitReader machinery the CONGEST
// messages and snapshots use (common/bit_io.hpp):
//
//   bytes 0..3   magic "CBCP"
//   u16   LE     protocol version (kProtocolVersion)
//   u32   LE     payload length in BITS (bytes on the wire = ceil(bits/8))
//   u64   LE     FNV-1a of the payload bytes (snapshot.hpp fnv1a) — wire
//                corruption of a frame body is detected before decoding
//                and surfaces as ProtoError::kCorrupted, never as a
//                plausible-but-wrong decode
//   ...          payload bytes
//
// The payload starts with a varuint message type, then type-specific
// fields.  Requests: SUBMIT (graph-or-path + run options), STATUS,
// RESULT, CANCEL (by job id), STATS, SHUTDOWN (begin graceful drain).
// Every request gets exactly one reply frame; clients poll RESULT until
// the job reaches a terminal state (the daemon never pushes).
//
// Robustness contract (tests/service_protocol_test.cpp): any malformed
// input — bad magic, unknown version, oversized length, truncated or
// garbage payload, unknown type — yields a typed ProtocolError.  It must
// never crash, read out of bounds, allocate unboundedly, or hang the
// daemon; the daemon answers with an ERROR frame and closes the
// connection.  Incomplete data is not an error: FrameDecoder simply
// waits for more bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bit_io.hpp"

namespace congestbc::service {

// v2 added StatusReply::phase_timeline (PR 5); v3 added the header
// payload checksum, SubmitRequest deadline/attempt fields, and the
// retry/chaos stats counters (PR 6); v4 added the streaming-graph
// surface — MUTATE frames, the SubmitRequest stream-addressing fields,
// and the mutation/version stats counters (PR 8); v5 added the
// algorithm portfolio — SUBMIT carries backend + approximation params,
// SubmitReply reports the resolved backend + auto-downgrade flag, and
// STATS gained backend_downgrades (PR 9); v6 added the cluster surface —
// JOIN/LEAVE membership frames, MIGRATE (a suspended job's canonical
// submit + snapshot, or a finished block, travels to another worker),
// LOOKUP (cross-worker cache probe by fingerprint), the SubmitRequest
// engine hint, and the migration stats counters (PR 10).  The version
// gates the whole frame, so older peers get kBadVersion instead of a
// misparse.
inline constexpr std::uint16_t kProtocolVersion = 6;

/// Frames larger than this are rejected before any allocation happens —
/// the daemon-side cap on hostile length fields.  Generous enough for an
/// inline edge list of a multi-million-edge graph.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 64u << 20;

/// Largest encoded ResultBlock the daemon will serve.  A RESULT reply
/// must fit the frame cap together with its envelope fields (type, flags,
/// fingerprint, detail), so the block cap leaves a kibibyte of slack.
/// Jobs whose block exceeds it fail with a typed detail at completion
/// time instead of blowing up frame_bytes on the reply path.
inline constexpr std::uint64_t kMaxServableBlockBits =
    (static_cast<std::uint64_t>(kMaxFramePayloadBytes) - 1024) * 8;

/// Why a frame or payload was rejected.
enum class ProtoError : std::uint8_t {
  kBadMagic = 1,     ///< first four bytes are not "CBCP"
  kBadVersion = 2,   ///< version field != kProtocolVersion
  kOversized = 3,    ///< length field exceeds kMaxFramePayloadBytes
  kMalformed = 4,    ///< payload bits do not decode as the claimed type
  kUnknownType = 5,  ///< message type is not one we speak
  kBadRequest = 6,   ///< well-formed but semantically invalid (bad graph,
                     ///< unreadable path, invalid fault spec)
  kCorrupted = 7,    ///< header checksum does not match the payload bytes
                     ///< (wire corruption; retryable on a fresh connection)
};

const char* to_string(ProtoError code);

/// Typed protocol failure.  Deliberately NOT an InvariantError: hostile
/// bytes on a socket are an environmental fault, not a library bug.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ProtoError code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  ProtoError code() const { return code_; }

 private:
  ProtoError code_;
};

// ----------------------------------------------------------- messages

enum class MsgType : std::uint8_t {
  kSubmit = 1,
  kStatus = 2,
  kResult = 3,
  kCancel = 4,
  kStats = 5,
  kShutdown = 6,
  kMutate = 7,
  kJoin = 8,
  kLeave = 9,
  kMigrate = 10,
  kLookup = 11,
  kSubmitReply = 65,
  kStatusReply = 66,
  kResultReply = 67,
  kCancelReply = 68,
  kStatsReply = 69,
  kShutdownReply = 70,
  kError = 71,
  kMutateReply = 72,
  kJoinReply = 73,
  kLeaveReply = 74,
  kMigrateReply = 75,
  kLookupReply = 76,
};

/// How the graph of a SUBMIT is transported.
enum class GraphSource : std::uint8_t {
  kInline = 0,  ///< canonical edge-list text in the frame
  kPath = 1,    ///< server-side path (resolved under the daemon's
                ///< --graph-root; the serving-farm shape where datasets
                ///< live next to the daemon, not the client)
};

/// SUBMIT: one BC job.  Result-determining options mirror the
/// DistributedBcOptions subset the daemon exposes; threads/legacy_engine
/// are execution hints that do not enter the fingerprint (results are
/// bit-identical across them, so they coalesce and share cache entries).
struct SubmitRequest {
  GraphSource source = GraphSource::kInline;
  std::string graph;  ///< edge-list text (kInline) or path (kPath)
  bool halve = true;
  bool reliable = false;
  /// Fault spec in FaultPlan::parse syntax; empty = reliable network.
  std::string faults;
  /// Per-job round budget; 0 = daemon default (always clamped to it).
  std::uint64_t max_rounds = 0;
  /// Execution hints (0 = daemon default; excluded from fingerprint).
  std::uint32_t threads = 0;
  bool legacy_engine = false;
  /// Client's remaining deadline budget in ms (0 = none).  Admission
  /// rejects (kDeadline) jobs it estimates cannot finish in time, and
  /// housekeeping expires jobs whose budget lapses while queued/running.
  /// Excluded from the fingerprint: retries of the same job carry a
  /// shrinking budget yet still coalesce onto one execution.
  std::uint64_t deadline_ms = 0;
  /// 1-based attempt number stamped by the retrying client; attempts > 1
  /// are counted as retried_submits in STATS.  Excluded from the
  /// fingerprint for the same reason as deadline_ms.
  std::uint32_t attempt = 1;
  // --- v4 stream addressing (ignored when stream_ns is empty) ---------
  /// Run against a live stream namespace (created by MUTATE) instead of
  /// an inline/path graph; `graph` must then be empty.
  std::string stream_ns;
  /// Which version of the namespace to run at; 0 = the live head at
  /// admission time (the reply's fingerprint pins which one that was).
  std::uint64_t stream_version = 0;
  /// Serve from the namespace's incremental BC maintainer (dirty-source
  /// recompute, sum-decomposed assembly) instead of a classic combined
  /// engine run.  Incremental results live under a tagged fingerprint —
  /// they are bit-identical to a from-scratch *decomposed* recompute,
  /// not to a combined run, so the two never share cache entries.
  bool incremental = false;
  // --- v5 portfolio fields --------------------------------------------
  /// congestbc::BackendId on the wire: 0 = auto (serve-time choice —
  /// admission control may downgrade to sampled under load), 1 =
  /// paper_exact, 2 = cfp, 3 = directed (graph text is then parsed as a
  /// directed edge list, orientation preserved), 4 = sampled.
  std::uint8_t backend = 1;
  /// Sampled-backend source budget (0 = server default); ignored — and
  /// fingerprinted as 0 — by every other backend.
  std::uint32_t samples = 0;
  /// Seed of the sampled backend's source draw.
  std::uint64_t sample_seed = 0;
  // --- v6 cluster fields ----------------------------------------------
  /// Simulator engine hint (congestbc::EngineKind on the wire): 0 =
  /// frontier (the default), 1 = arena, 2 = legacy.  Pure execution
  /// hint — excluded from the fingerprint like threads/legacy_engine
  /// (results are bit-identical across engines), but it makes every
  /// engine wire-selectable, so a migrated job resumes under the engine
  /// the client asked for.  legacy_engine=true still wins for
  /// backward compatibility.
  std::uint8_t engine = 0;
};

/// One edge operation of a MUTATE batch (wire form of
/// stream::EdgeOp; kind: 1 = insert, 2 = remove).
struct MutateOp {
  std::uint8_t kind = 1;
  std::uint32_t u = 0;
  std::uint32_t v = 0;
};

/// MUTATE: apply a batch of edge ops to a named stream namespace at an
/// expected base version (optimistic concurrency).  A namespace is
/// created by the first MUTATE that names it: base_version must be 0
/// and base_graph carries the version-0 edge-list text; ops may ride
/// along and are applied on top as version 1.
struct MutateRequest {
  std::string ns;
  std::uint64_t base_version = 0;
  /// Version-0 edge-list text; only meaningful (and only allowed) when
  /// the namespace does not exist yet.
  std::string base_graph;
  std::vector<MutateOp> ops;
};

enum class MutateOutcome : std::uint8_t {
  kApplied = 0,          ///< batch applied; version/fingerprint are the new head
  kCreated = 1,          ///< namespace created (and ops, if any, applied)
  kVersionConflict = 2,  ///< base_version != live head; version/fingerprint
                         ///< report the actual head so the client can rebase
  kRejected = 3,         ///< semantically invalid (detail says why)
  kDraining = 4,         ///< daemon is draining; not accepting mutations
};

const char* to_string(MutateOutcome o);

struct MutateReply {
  MutateOutcome outcome = MutateOutcome::kRejected;
  std::uint64_t version = 0;      ///< new head (or actual head on conflict)
  std::uint64_t fingerprint = 0;  ///< chained fingerprint at that version
  std::uint64_t applied = 0;      ///< ops that changed the edge set
  std::uint64_t dropped = 0;      ///< no-ops/duplicates canonicalized away
  std::string detail;
};

/// STATUS / RESULT / CANCEL all address a job by daemon-assigned id.
struct JobRequest {
  std::uint64_t job_id = 0;
};

// ------------------------------------------------- v6 cluster frames

/// JOIN: a worker announces itself to the router.  Idempotent — the
/// worker re-sends it periodically, which doubles as the heartbeat that
/// heals a health-check eviction (automatic rejoin).
struct JoinRequest {
  std::string worker_id;  ///< stable identity; canonically "host:port"
  std::string host;       ///< address the router should dial back
  std::uint16_t port = 0;
};

struct JoinReply {
  bool accepted = false;
  std::string detail;
};

/// LEAVE: a draining worker removes itself from the ring immediately
/// instead of waiting for the health checker to evict it.
struct LeaveRequest {
  std::string worker_id;
};

struct LeaveReply {
  bool removed = false;  ///< false: the router never knew this worker
};

/// What a MIGRATE frame carries.
enum class MigrateKind : std::uint8_t {
  kResume = 0,  ///< a suspended job: canonical submit (+ snapshot) — the
                ///< target admits it and resumes from the checkpoint
  kResult = 1,  ///< a finished encoded block — the target caches it by
                ///< fingerprint so unfetched results survive the drain
};

/// MIGRATE: drain-time job transplant.  The draining worker ships the
/// job's canonical SUBMIT (backend already resolved — auto must not
/// re-resolve under the target's load) plus the newest checkpoint
/// container bytes; the target re-validates everything exactly like its
/// own spool recovery (fingerprint recomputed and matched) before
/// admitting, so a corrupt or hostile migration is rejected, never run.
struct MigrateRequest {
  MigrateKind kind = MigrateKind::kResume;
  std::uint64_t fingerprint = 0;  ///< authoritative run fingerprint
  std::uint64_t origin_job_id = 0;
  std::string origin_worker;  ///< worker_id of the draining sender
  SubmitRequest submit;       ///< canonical form (kResume)
  /// Round of the shipped checkpoint; 0 with empty bytes = no snapshot
  /// (non-checkpointable backend) — the target re-runs from scratch,
  /// which is still bit-identical.
  std::uint64_t snapshot_round = 0;
  std::vector<std::uint8_t> snapshot_bytes;  ///< cbcsnap container
  std::vector<std::uint8_t> block_bytes;     ///< encoded block (kResult)
  std::uint64_t block_bits = 0;
};

enum class MigrateOutcome : std::uint8_t {
  kAccepted = 0,   ///< admitted (kResume) or cached (kResult)
  kCoalesced = 1,  ///< fingerprint already cached/in-flight on the target
  kRejected = 2,   ///< failed validation (detail says why)
  kDraining = 3,   ///< target is itself draining; try another worker
};

const char* to_string(MigrateOutcome o);

struct MigrateReply {
  MigrateOutcome outcome = MigrateOutcome::kRejected;
  std::uint64_t job_id = 0;       ///< target-assigned id when admitted
  std::uint64_t fingerprint = 0;  ///< echo of the migrated fingerprint
  std::string detail;
};

/// LOOKUP: cross-worker result-cache probe by fingerprint.  The router
/// asks non-home workers before scheduling an execution; a hit serves
/// the byte-identical cached block without running anything.
struct LookupRequest {
  std::uint64_t fingerprint = 0;
};

struct LookupReply {
  bool found = false;
  std::uint64_t fingerprint = 0;
  std::vector<std::uint8_t> block_bytes;  ///< cached block when found
  std::uint64_t block_bits = 0;
};

/// A decoded request frame.
struct Request {
  MsgType type = MsgType::kSubmit;
  SubmitRequest submit;    ///< valid when type == kSubmit
  JobRequest job;          ///< valid for kStatus/kResult/kCancel
  MutateRequest mutate;    ///< valid when type == kMutate
  JoinRequest join;        ///< valid when type == kJoin
  LeaveRequest leave;      ///< valid when type == kLeave
  MigrateRequest migrate;  ///< valid when type == kMigrate
  LookupRequest lookup;    ///< valid when type == kLookup
};

/// What happened to a SUBMIT at admission.
enum class SubmitDisposition : std::uint8_t {
  kQueued = 0,     ///< fresh job admitted to the queue
  kCacheHit = 1,   ///< identical fingerprint already completed; RESULT is
                   ///< immediately ready, no execution scheduled
  kCoalesced = 2,  ///< identical fingerprint already queued/running; this
                   ///< client shares that execution
  kBusy = 3,       ///< queue at its depth limit — retry later
  kDraining = 4,   ///< daemon is draining; not admitting work
  kRejected = 5,   ///< semantically invalid (detail says why)
  kDeadline = 6,   ///< deadline budget too small for the estimated wait —
                   ///< retrying with the same budget will not help
};

const char* to_string(SubmitDisposition d);

struct SubmitReply {
  SubmitDisposition disposition = SubmitDisposition::kQueued;
  std::uint64_t job_id = 0;       ///< 0 when not admitted
  std::uint64_t fingerprint = 0;  ///< run_fingerprint of the job
  std::string detail;
  // --- v5 portfolio fields --------------------------------------------
  /// The backend the job actually runs (congestbc::BackendId): the
  /// request's, or admission control's resolution of backend=auto.
  /// 0 on non-admitted dispositions that never resolved one.
  std::uint8_t backend = 0;
  /// True when a backend=auto job was downgraded to the sampled backend
  /// under queue pressure / deadline risk (counted in
  /// STATS::backend_downgrades).
  bool downgraded = false;
};

/// Lifecycle of a job inside the daemon.
enum class JobState : std::uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< completed; result cached and servable
  kFailed = 3,     ///< terminal failure (stall, round/time budget, error)
  kCancelled = 4,
  kSuspended = 5,  ///< drain checkpointed it; a restarted daemon resumes
  kUnknown = 6,    ///< no such job id
};

const char* to_string(JobState s);

struct StatusReply {
  JobState state = JobState::kUnknown;
  std::uint64_t job_id = 0;
  std::uint64_t fingerprint = 0;
  /// Jobs ahead of this one (meaningful when kQueued).
  std::uint32_t queue_position = 0;
  std::string detail;
  /// The finished run's logical phase timeline
  /// (obs::format_phase_timeline); empty until the job is terminal with
  /// a harvested result.
  std::string phase_timeline;
};

/// The cached/servable payload of a finished run.  Encoded once with
/// encode_result_block(); the LRU cache stores those exact bytes, so a
/// cache hit serves the byte-identical block a fresh execution produced
/// (tests pin this).  Doubles and long doubles travel bit-exactly via
/// the snapshot field codecs.
struct ResultBlock {
  std::uint8_t run_status = 0;  ///< congestbc::RunStatus
  std::string detail;
  std::uint64_t rounds = 0;
  std::uint32_t diameter = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t total_physical_messages = 0;
  std::vector<double> betweenness;
  std::vector<double> closeness;
  std::vector<double> graph_centrality;
  std::vector<long double> stress;
  std::vector<std::uint32_t> eccentricities;
};

struct ResultReply {
  bool ready = false;
  /// When !ready: the job's current state (clients keep polling on
  /// kQueued/kRunning, give up otherwise).
  JobState state = JobState::kUnknown;
  bool from_cache = false;
  std::uint64_t fingerprint = 0;
  std::string detail;
  /// When ready: the encoded ResultBlock, bit-exact as cached.
  std::vector<std::uint8_t> block_bytes;
  std::uint64_t block_bits = 0;
};

enum class CancelOutcome : std::uint8_t {
  kCancelled = 0,  ///< dequeued before it ran — never executed
  kTooLate = 1,    ///< already terminal (done/failed/cancelled)
  kNotFound = 2,
  kRequested = 3,  ///< halt raised on a running job: best-effort — it
                   ///< usually lands kCancelled at its next round
                   ///< boundary, but a run that finishes first still
                   ///< completes (and is cached) as kDone
};

const char* to_string(CancelOutcome o);

struct CancelReply {
  CancelOutcome outcome = CancelOutcome::kNotFound;
};

/// Counters + derived gauges; also what the periodic JSON metrics dump
/// serializes (service/metrics.hpp).
struct StatsReply {
  std::uint64_t uptime_ms = 0;
  std::uint64_t submits = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t draining_rejections = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_suspended = 0;
  std::uint64_t jobs_resumed = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t running = 0;
  std::uint64_t workers = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_evictions = 0;
  /// Submits whose SubmitRequest::attempt was > 1 (client retries seen).
  std::uint64_t retried_submits = 0;
  /// Submits rejected at admission because the deadline budget was too
  /// small for the estimated queue wait.
  std::uint64_t deadline_rejections = 0;
  /// Jobs failed because their deadline lapsed while queued or running.
  std::uint64_t deadline_expired = 0;
  /// Corrupt/truncated spool, cache, or checkpoint files moved aside by
  /// the startup integrity scan (or on read) instead of trusted/deleted.
  std::uint64_t quarantined_files = 0;
  double qps = 0.0;
  double worker_utilization = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  // --- v4 streaming counters (appended after the gauges: the wire
  // format is append-only) ---------------------------------------------
  /// Edge ops that changed a live graph (MUTATE, after canonicalization).
  std::uint64_t mutations_applied = 0;
  /// Gauge: highest live version across stream namespaces (0 = none).
  std::uint64_t graph_version = 0;
  /// Sources re-run by the incremental maintainers (dirty after a batch).
  std::uint64_t dirty_sources_rerun = 0;
  /// Result-cache entries invalidated by fingerprint delta on MUTATE.
  std::uint64_t cache_invalidations = 0;
  // --- v5 portfolio counters ------------------------------------------
  /// backend=auto submits downgraded to the sampled backend by
  /// admission control (queue pressure / deadline risk).
  std::uint64_t backend_downgrades = 0;
  // --- v6 cluster counters --------------------------------------------
  /// Suspended jobs / unfetched results shipped to another worker at
  /// drain (MIGRATE sent and accepted).
  std::uint64_t migrated_out = 0;
  /// MIGRATE frames this worker validated and admitted (or cached).
  std::uint64_t migrated_in = 0;
  /// Cross-worker LOOKUP probes answered from the local result cache.
  std::uint64_t lookups_served = 0;
};

struct ShutdownReply {
  bool draining = false;  ///< true: drain begun (or already under way)
};

struct ErrorReply {
  ProtoError code = ProtoError::kMalformed;
  std::string message;
};

/// A decoded reply frame (client side).
struct Reply {
  MsgType type = MsgType::kError;
  SubmitReply submit;
  StatusReply status;
  ResultReply result;
  CancelReply cancel;
  StatsReply stats;
  ShutdownReply shutdown;
  ErrorReply error;
  MutateReply mutate;
  JoinReply join;
  LeaveReply leave;
  MigrateReply migrate;
  LookupReply lookup;
};

// ------------------------------------------------------------ framing

/// A complete extracted frame payload.
struct FramePayload {
  std::vector<std::uint8_t> bytes;
  std::uint64_t bits = 0;

  BitReader reader() const {
    return BitReader(bytes.data(), static_cast<std::size_t>(bits));
  }
};

/// Wraps a payload in the frame header, ready to write to a socket.
std::vector<std::uint8_t> frame_bytes(const BitWriter& payload);

/// Incremental deframer for one connection.  feed() hostile bytes
/// freely: header validation throws ProtocolError (bad magic / version /
/// oversized length) before any payload allocation; incomplete frames
/// just wait.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload_bytes = kMaxFramePayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  void feed(const std::uint8_t* data, std::size_t size);

  /// Next complete frame, or nullopt when more bytes are needed.
  std::optional<FramePayload> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::uint32_t max_payload_bytes_;
  std::vector<std::uint8_t> buffer_;
};

// --------------------------------------------------- encode / decode

BitWriter encode_request(const Request& request);
BitWriter encode_reply(const Reply& reply);

/// Decodes a request payload.  Throws ProtocolError (kMalformed /
/// kUnknownType) on anything that does not decode cleanly — including
/// trailing bits after the last field, which a well-formed encoder never
/// produces.
Request decode_request(const FramePayload& payload);

/// Client-side counterpart of decode_request.
Reply decode_reply(const FramePayload& payload);

/// The servable result body (see ResultBlock).  decode throws
/// ProtocolError on malformed input.
BitWriter encode_result_block(const ResultBlock& block);
ResultBlock decode_result_block(BitReader& r);

// Convenience constructors for one-field requests/replies.
Request make_submit(const SubmitRequest& submit);
Request make_job_request(MsgType type, std::uint64_t job_id);
Request make_plain(MsgType type);  ///< kStats / kShutdown
Request make_mutate(const MutateRequest& mutate);
Request make_join(const JoinRequest& join);
Request make_leave(const LeaveRequest& leave);
Request make_migrate(const MigrateRequest& migrate);
Request make_lookup(std::uint64_t fingerprint);

}  // namespace congestbc::service
