// The BC serving daemon: a poll(2)-based TCP server that turns the
// one-shot pipeline (core/runner.hpp) into a long-lived service.
//
// Architecture (DESIGN.md §10):
//
//   clients ──TCP──▶ io thread (poll loop, framing, admission)
//                      │ bounded queue, fingerprint coalescing
//                      ▼
//                    WorkerPool (core/thread_pool.hpp)
//                      │ run_bc_with_watchdog + checkpoint policy
//                      ▼
//                    LRU result cache (service/cache.hpp)
//
// One io thread owns the sockets; N workers own the runs; a single
// scheduler mutex guards the shared state between them (queue, jobs,
// coalescing map, cache, metrics).  Clients poll RESULT — the daemon
// never pushes — so the io thread never blocks on a slow client or a
// slow job.
//
// Durability: with a spool directory configured, every admitted job is
// persisted (job-<fp>.req) and checkpointed while it runs
// (ckpt/<fp>/ckpt-*.cbcsnap, the PR-3 policy).  SIGTERM triggers a
// graceful drain: stop admitting, raise every running job's cooperative
// halt flag (DistributedBcOptions::halt_request) so it suspends at the
// next round boundary with a checkpoint, flush the cache index, exit.  A
// restarted daemon rescans the spool and resumes each job from its
// latest checkpoint — bit-identical to an uninterrupted run, because the
// checkpoint subsystem guarantees exactly that.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "core/thread_pool.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"
#include "service/cache.hpp"
#include "service/journal.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "stream/incremental_bc.hpp"
#include "stream/versioned_graph.hpp"

namespace congestbc::service {

struct DaemonConfig {
  /// Listen address.  Loopback by default: the daemon trusts its clients
  /// (no auth in protocol v1), so exposing it wider is an explicit choice.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is Daemon::port() after start().
  std::uint16_t port = 0;
  /// Concurrent job executions (WorkerPool size).  0 = hardware threads.
  unsigned workers = 2;
  /// Admission limit on jobs queued but not yet running; submits beyond
  /// it get a typed BUSY reply.
  std::size_t queue_limit = 16;
  /// Result-cache entries (0 disables caching).
  std::size_t cache_capacity = 64;
  /// Durability root (jobs/, ckpt/, cache/ live under it).  Empty = no
  /// persistence: drain abandons in-flight work instead of suspending it.
  std::string spool_dir;
  /// Base directory for GraphSource::kPath submits; empty = path submits
  /// are rejected.  Resolved paths may not escape it.
  std::string graph_root;
  /// Per-job checkpoint cadence while running (rounds); effective only
  /// with a spool_dir.  0 = only the suspension checkpoint at drain.
  std::uint64_t checkpoint_every = 0;
  unsigned checkpoint_keep = 2;
  /// Admission-side cap on a job's round budget; per-request max_rounds
  /// is clamped to it, 0 in the request means "the cap".
  std::uint64_t max_rounds_cap = 50'000'000;
  /// Wall-clock budget per job (ms); over-budget jobs are halted and
  /// failed.  0 = unlimited.
  std::uint64_t job_time_budget_ms = 0;
  /// Simulator lanes per job when the request leaves threads == 0.
  unsigned default_threads = 1;
  /// Periodic JSON metrics dump (service/metrics.hpp to_json); empty
  /// disables.  Always written once more at drain.
  std::string metrics_path;
  std::uint64_t metrics_every_ms = 1000;
  /// Frame-size cap handed to each connection's FrameDecoder.
  std::uint32_t max_frame_bytes = kMaxFramePayloadBytes;
  /// How long a terminal job (done/failed/cancelled) stays addressable by
  /// STATUS/RESULT before it is garbage-collected and answers kUnknown.
  /// 0 = no time limit (job_retention_limit still applies).
  std::uint64_t job_retention_ms = 300'000;
  /// Hard cap on retained terminal jobs — the oldest are collected first.
  /// Bounds daemon memory even under a flood of fire-and-forget submits.
  std::size_t job_retention_limit = 1024;
  /// Write-side backpressure: once a session has this many un-flushed
  /// reply bytes, the daemon stops reading and processing its requests
  /// until the backlog drains.  Worst-case buffered output per session is
  /// this limit plus one maximal reply frame.
  std::size_t session_out_limit = 64u << 20;
  /// Cluster membership (v6): "host:port" of a congestbc_router to JOIN.
  /// Empty = standalone daemon.  When set, the daemon announces itself
  /// after binding, re-sends the (idempotent) JOIN every join_every_ms as
  /// the rejoin heartbeat, and at drain time transplants its suspended
  /// jobs and unfetched results to the router (MIGRATE) before LEAVE-ing
  /// the ring.
  std::string join_router;
  /// Address the router should dial this worker back on; defaults to
  /// `host` when empty (useful when the daemon binds 0.0.0.0).
  std::string advertise_host;
  /// Cadence of the periodic re-JOIN heartbeat (0 = announce once).
  std::uint64_t join_every_ms = 1000;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds + listens, recovers the spool (resumable jobs re-enqueued,
  /// persisted cache entries reloaded in LRU order), starts the workers.
  /// Throws std::runtime_error on socket failure.
  void start();

  /// The bound port (after start()).
  std::uint16_t port() const { return port_; }

  /// Runs the poll loop in the calling thread; returns once a drain
  /// completes.
  void serve();

  /// serve() on an internal thread; pair with wait().
  void serve_async();
  void wait();

  /// Begins the graceful drain (thread-safe, idempotent).
  void request_drain();

  /// Async-signal-safe drain trigger for SIGTERM handlers: one write()
  /// to the wake pipe, nothing else.
  void notify_signal();

  bool draining() const { return drain_requested_.load(std::memory_order_relaxed); }

  /// Current stats snapshot (what a STATS request returns) — for tests
  /// and the periodic dump.
  StatsReply stats();

 private:
  struct Job {
    std::uint64_t id = 0;
    std::uint64_t fingerprint = 0;
    JobState state = JobState::kQueued;
    SubmitRequest request;  ///< canonical form (what the spool stores)
    Graph graph{0, {}};
    /// Set instead of `graph` for backend=directed jobs (v5 portfolio
    /// plane); the run dispatches through portfolio::run_portfolio.
    std::optional<Digraph> digraph;
    DistributedBcOptions options;  ///< result-determining fields resolved
    std::string detail;
    /// Set in terminal states; shared with the cache on kDone.
    std::shared_ptr<const CachedResult> result;
    bool from_cache = false;
    bool cancel_requested = false;
    bool budget_exceeded = false;
    /// Halted because the client's propagated deadline lapsed mid-run.
    bool deadline_exceeded = false;
    /// Absolute client deadline — the max over every submitter that
    /// coalesced onto this execution; time_point::max() = none.
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /// Snapshot path to resume from (spool recovery).
    std::string resume_from;
    /// Cooperative halt flag wired into the run (drain / cancel / budget).
    std::atomic<bool> halt{false};
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point started;
    /// When the job entered a terminal state (GC eligibility clock).
    std::chrono::steady_clock::time_point terminal_at;
    /// Logical phase timeline of the harvested run
    /// (obs::format_phase_timeline); set when the run returns, served in
    /// STATUS replies.
    std::string phase_timeline;
    /// Non-empty: an incremental maintainer job against this stream
    /// namespace at stream_version (v4).  Such jobs are never spooled
    /// (re-requesting one after a restart is cheap and the maintainer
    /// state they need is rebuilt from the stream log anyway) and ignore
    /// cooperative halt — the maintainer runs to completion.
    std::string stream_ns;
    std::uint64_t stream_version = 0;
  };

  /// One live mutable graph (v4 streaming plane).  Guarded by mutex_.
  struct StreamNamespace {
    std::unique_ptr<stream::VersionedGraph> graph;
    /// Run fingerprints of result-cache entries produced through this
    /// namespace since its last mutation.  A MUTATE superseding the head
    /// erases exactly these (targeted invalidation, not a flush).
    std::unordered_set<std::uint64_t> live_cache_fps;
    /// Incremental maintainer, built lazily by the first incremental
    /// submit.  Null while checked out by a worker (see
    /// execute_incremental_job) — a concurrent incremental job for the
    /// same namespace then cold-starts its own rather than waiting.
    std::unique_ptr<stream::IncrementalBc> maintainer;
    /// The stream version maintainer's summaries describe.
    std::uint64_t maintainer_version = 0;
  };

  struct Session {
    /// What the first bytes said this connection speaks: CBCP frames, or
    /// HTTP ("GET ...") for the plaintext /metrics endpoint.  Sniffed
    /// before anything reaches the FrameDecoder (which would answer
    /// kBadMagic).
    enum class Mode : std::uint8_t { kUnknown, kFrames, kHttp };

    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    bool close_after_flush = false;
    bool dead = false;
    Mode mode = Mode::kUnknown;
    /// Bytes buffered while the mode is unknown; for kHttp, the request
    /// accumulates here until the blank line.
    std::vector<std::uint8_t> sniff;

    explicit Session(int fd_in, std::uint32_t max_frame_bytes)
        : fd(fd_in), decoder(max_frame_bytes) {}

    /// Reply bytes appended but not yet written to the socket.
    std::size_t pending_out() const { return out.size() - out_pos; }
  };

  // --- request handling (io thread) ---
  Reply dispatch(const Request& request);
  SubmitReply handle_submit(const SubmitRequest& request);
  MutateReply handle_mutate(const MutateRequest& request);
  StatusReply handle_status(std::uint64_t job_id);
  ResultReply handle_result(std::uint64_t job_id);
  CancelReply handle_cancel(std::uint64_t job_id);
  ShutdownReply handle_shutdown();
  /// Target side of a drain-time transplant (v6).  Re-validates the
  /// inner canonical submit exactly like spool recovery — recomputed
  /// fingerprint must match the wire claim — before admitting a kResume
  /// (snapshot bytes land in the checkpoint directory so the run resumes
  /// bit-identically) or caching a kResult.
  MigrateReply handle_migrate(const MigrateRequest& request);
  /// Cross-worker result-cache probe by fingerprint (v6).
  LookupReply handle_lookup(const LookupRequest& request);
  StatsReply stats_locked();

  /// Parses + validates a submit into (graph-or-digraph, options,
  /// canonical request); throws ProtocolError(kBadRequest) with the
  /// reason.  `digraph` is engaged (and `graph` left empty) exactly when
  /// the request names the directed backend.
  void parse_submit(const SubmitRequest& request, Graph& graph,
                    std::optional<Digraph>& digraph,
                    DistributedBcOptions& options,
                    SubmitRequest& canonical) const;

  /// Resolves a stream-addressed submit (stream_ns set) into an inline
  /// one: materializes the addressed version under mutex_ and rewrites
  /// request.graph with its edge-list text.  Returns the resolved
  /// version.  Throws ProtocolError(kBadRequest) on an unknown
  /// namespace, a version beyond the head, or a non-empty inline graph.
  std::uint64_t resolve_stream_submit(SubmitRequest& request);

  // --- execution (worker threads) ---
  void execute_job(const std::shared_ptr<Job>& job);
  /// Serves an incremental submit from the namespace's maintainer:
  /// checks the maintainer out under mutex_, advances it over the
  /// pending deltas (or cold-starts at the target version), assembles,
  /// caches under the job's tagged fingerprint, and checks it back in.
  void execute_incremental_job(const std::shared_ptr<Job>& job);
  void admit_locked(const std::shared_ptr<Job>& job);
  /// Stamps the terminal clock and enrolls the job for retention GC.
  void mark_terminal_locked(const std::shared_ptr<Job>& job);
  /// Evicts terminal jobs past the retention TTL or count cap; evicted
  /// ids answer kUnknown afterwards.
  void gc_jobs_locked(std::chrono::steady_clock::time_point now);

  // --- drain / poll loop internals (io thread) ---
  void begin_drain_locked();
  bool drain_complete_locked() const;
  void finish_drain();
  void poll_tick_housekeeping();
  void handle_session_input(Session& session);
  /// Routes received bytes by Session::Mode (sniffing on first contact).
  void feed_session_bytes(Session& session, const std::uint8_t* data,
                          std::size_t n);
  void process_session_frames(Session& session);
  /// Answers one buffered HTTP request (GET /metrics → Prometheus text)
  /// and closes the connection after the flush.
  void process_http_request(Session& session);
  void flush_session_output(Session& session);
  void accept_clients();
  void append_reply(Session& session, const Reply& reply);

  // --- spool persistence ---
  std::string jobs_dir() const;
  std::string ckpt_dir(std::uint64_t fingerprint) const;
  std::string cache_dir() const;
  std::string quarantine_dir() const;
  void spool_write_job(const Job& job) const;
  void spool_remove_job(const Job& job) const;
  /// Journals the terminal transition, then removes the spool entry.
  /// The order is the crash-safety invariant: a kill -9 between the two
  /// leaves a stale .req that recovery recognizes (terminal record) and
  /// removes instead of re-running.
  void retire_job_locked(const Job& job);
  /// Moves a corrupt/truncated spool file (or directory) into
  /// <spool>/quarantine/ and counts it — startup never trusts, deletes,
  /// or dies on bad state.
  void quarantine_path(const std::string& path);
  void persist_cache_entry(std::uint64_t fingerprint,
                           const CachedResult& result) const;
  void remove_cache_entry(std::uint64_t fingerprint) const;
  void flush_cache_index_locked() const;
  void recover_spool();
  void dump_metrics();

  // --- streaming plane (v4) ---
  std::string stream_dir(const std::string& ns) const;
  /// Persists one committed stream version (base edge list for version
  /// 0, the canonical batch otherwise) and journals its chained
  /// fingerprint — in that order, so an acknowledged version is always
  /// replayable and a batch file without its record is a torn commit.
  void persist_stream_version(const std::string& ns,
                              const StreamNamespace& state);
  /// Erases the cache entries a mutation superseded (memory + disk) and
  /// counts them.
  void invalidate_stream_cache_locked(StreamNamespace& state);
  /// Rebuilds streams_ from <spool>/stream/ at startup, accepting each
  /// namespace's batch files up to the highest version whose chained
  /// fingerprint the journal acknowledged (a later acknowledged
  /// fingerprint transitively authenticates its whole prefix — it chains
  /// over every earlier delta); trailing files are torn commits and are
  /// removed.  `trust_all` (journal unavailable) accepts every intact
  /// file instead.  Returns the per-namespace head fingerprints to seed
  /// the compacted journal with.
  std::vector<std::uint64_t> recover_streams(
      const std::vector<std::uint64_t>& journaled_mutations, bool trust_all);

  // --- cluster membership (v6) ---
  /// Stable ring identity: "<advertise-or-listen host>:<bound port>".
  std::string worker_id() const;
  /// One best-effort JOIN to config_.join_router (short timeout; a
  /// router that is not up yet is retried by the heartbeat).
  void announce_join();
  /// Drain-time transplant: ships every suspended job (canonical submit
  /// + newest valid checkpoint) and every done job still holding its
  /// request (unfetched result) to the router as MIGRATE frames, then
  /// LEAVEs the ring.  Accepted resumes release their local spool entry
  /// so a restarted daemon cannot re-run work that now lives elsewhere.
  void migrate_suspended_jobs();

  DaemonConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;  ///< drain observed by the io thread
  bool started_ = false;

  std::unique_ptr<WorkerPool> pool_;
  std::vector<std::unique_ptr<Session>> sessions_;

  /// Scheduler mutex: guards everything below (io thread + workers).
  std::mutex mutex_;
  std::uint64_t next_job_id_ = 1;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;  // by id
  /// Queued-or-running jobs by fingerprint — the coalescing map.
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> inflight_;
  std::deque<std::shared_ptr<Job>> queue_;  ///< admission order
  /// Terminal job ids oldest-first — the retention GC scan order.
  std::deque<std::uint64_t> terminal_order_;
  /// Live stream namespaces by name (ordered so recovery, iteration,
  /// and the journal seed are deterministic).
  std::map<std::string, StreamNamespace> streams_;
  LruResultCache cache_;
  ServiceMetrics metrics_;
  std::uint64_t running_ = 0;
  /// Spool lifecycle journal (null without a spool dir or when the
  /// journal file is unwritable — then recovery falls back to trusting
  /// the .req files alone).  Appended under mutex_.
  std::unique_ptr<SpoolJournal> journal_;

  std::chrono::steady_clock::time_point last_metrics_dump_;
  std::chrono::steady_clock::time_point last_join_;
  std::thread serve_thread_;
};

}  // namespace congestbc::service
