#include "service/chaos.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <sstream>

#include "common/assert.hpp"

namespace congestbc::service {

namespace {

using Clock = std::chrono::steady_clock;

/// SplitMix64 finalizer — the same stateless-hash idiom as
/// congest/fault.cpp, so a chunk's fate depends only on (seed, conn,
/// direction, chunk index), never on relay timing.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t chunk_hash(std::uint64_t seed, std::uint64_t conn, int direction,
                         std::uint64_t index) {
  std::uint64_t h = seed + 0x9E3779B97F4A7C15ull;
  h = mix64(h ^ mix64(conn + 0x9E3779B97F4A7C15ull));
  h = mix64(h ^ mix64((static_cast<std::uint64_t>(direction + 1) << 56) ^
                      index));
  return h;
}

double chunk_draw(std::uint64_t hash) {
  return static_cast<double>(hash >> 11) * 0x1.0p-53;
}

void check_probability(double p, const char* name) {
  CBC_EXPECTS(std::isfinite(p) && p >= 0.0 && p <= 1.0,
              std::string(name) + " probability must be in [0, 1]");
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  CBC_EXPECTS(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "chaosproxy: fcntl(O_NONBLOCK) failed");
}

constexpr std::size_t kReadBuf = 16 * 1024;
/// Backpressure cap per direction: stop reading the source while this
/// much is buffered, so a stalled peer cannot balloon the relay.
constexpr std::size_t kBacklogCap = 256 * 1024;

enum class Fate : std::uint8_t { kDeliver, kCorrupt, kStall, kCut, kRst };

}  // namespace

// ------------------------------------------------------------ ChaosPlan

void ChaosPlan::validate() const {
  check_probability(corrupt_probability, "corrupt");
  check_probability(stall_probability, "stall");
  check_probability(cut_probability, "cut");
  check_probability(rst_probability, "rst");
  CBC_EXPECTS(corrupt_probability + stall_probability + cut_probability +
                      rst_probability <=
                  1.0,
              "corrupt + stall + cut + rst probabilities must sum to at "
              "most 1");
}

ChaosPlan ChaosPlan::parse(const std::string& spec) {
  ChaosPlan plan;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) {
      continue;
    }
    const auto eq = item.find('=');
    CBC_EXPECTS(eq != std::string::npos,
                "chaos spec items must be key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(std::stoull(value));
    } else if (key == "corrupt") {
      plan.corrupt_probability = std::stod(value);
    } else if (key == "stall") {
      plan.stall_probability = std::stod(value);
    } else if (key == "cut") {
      plan.cut_probability = std::stod(value);
    } else if (key == "rst") {
      plan.rst_probability = std::stod(value);
    } else if (key == "stall-ms") {
      plan.stall_ms = static_cast<std::uint64_t>(std::stoull(value));
    } else if (key == "partial") {
      plan.partial_cap = static_cast<std::uint64_t>(std::stoull(value));
    } else if (key == "grace") {
      plan.grace_chunks = static_cast<std::uint64_t>(std::stoull(value));
    } else {
      CBC_EXPECTS(false, "unknown chaos spec key '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

std::string ChaosPlan::describe() const {
  if (empty()) {
    return "no chaos (faithful relay)";
  }
  std::ostringstream out;
  out << "seed=" << seed;
  if (corrupt_probability > 0.0) {
    out << " corrupt=" << corrupt_probability;
  }
  if (stall_probability > 0.0) {
    out << " stall=" << stall_probability << " (" << stall_ms << " ms)";
  }
  if (cut_probability > 0.0) {
    out << " cut=" << cut_probability;
  }
  if (rst_probability > 0.0) {
    out << " rst=" << rst_probability;
  }
  if (partial_cap > 0) {
    out << " partial<=" << partial_cap << "B";
  }
  if (grace_chunks > 0) {
    out << " grace=" << grace_chunks;
  }
  return out.str();
}

// ----------------------------------------------------------- ChaosProxy

/// One relayed connection: two fds and two directed flows.  Direction 0
/// is client→upstream, 1 is upstream→client.
struct ChaosProxy::Conn {
  int fd[2] = {-1, -1};  ///< fd[0] = client side, fd[1] = upstream side
  std::uint64_t id = 0;

  struct Flow {
    std::deque<std::uint8_t> backlog;  ///< read but not yet chunked
    std::vector<std::uint8_t> chunk;   ///< current chunk, fate applied
    std::size_t chunk_off = 0;
    std::uint64_t chunk_index = 0;
    Clock::time_point release = Clock::time_point::min();
    bool src_eof = false;
    bool cut_after_chunk = false;
    bool wr_shutdown = false;
  } flow[2];  ///< flow[d] moves bytes from fd[d] to fd[1 - d]

  bool dead = false;
};

ChaosProxy::ChaosProxy(ChaosPlan plan, std::string upstream_host,
                       std::uint16_t upstream_port)
    : plan_(plan),
      upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port) {
  plan_.validate();
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start(std::uint16_t listen_port) {
  CBC_EXPECTS(!running_.load(), "chaosproxy already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CBC_EXPECTS(listen_fd_ >= 0, "chaosproxy: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(listen_port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  CBC_EXPECTS(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr) == 0,
              "chaosproxy: bind() failed");
  CBC_EXPECTS(::listen(listen_fd_, 64) == 0, "chaosproxy: listen() failed");
  socklen_t len = sizeof addr;
  CBC_EXPECTS(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len) == 0,
              "chaosproxy: getsockname() failed");
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  CBC_EXPECTS(::pipe(wake_fds_) == 0, "chaosproxy: pipe() failed");
  set_nonblocking(wake_fds_[0]);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
}

void ChaosProxy::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) {
    thread_.join();
  }
  for (auto& conn : conns_) {
    kill(*conn, /*with_rst=*/false);
  }
  conns_.clear();
  for (int* fd : {&listen_fd_, &wake_fds_[0], &wake_fds_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void ChaosProxy::accept_one() {
  const int client = ::accept(listen_fd_, nullptr, nullptr);
  if (client < 0) {
    return;  // EAGAIN / transient: the loop re-polls
  }
  const int upstream = ::socket(AF_INET, SOCK_STREAM, 0);
  if (upstream < 0) {
    ::close(client);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(upstream_port_);
  const std::string resolved =
      upstream_host_ == "localhost" ? "127.0.0.1" : upstream_host_;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1 ||
      ::connect(upstream, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    // Upstream down (e.g. the daemon was just killed): drop the client;
    // it sees EOF and heals by retrying.
    ::close(client);
    ::close(upstream);
    return;
  }
  set_nonblocking(client);
  set_nonblocking(upstream);
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  ::setsockopt(upstream, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  auto conn = std::make_unique<Conn>();
  conn->fd[0] = client;
  conn->fd[1] = upstream;
  conn->id = next_conn_id_++;
  conns_.push_back(std::move(conn));
  stats_.connections.fetch_add(1, std::memory_order_relaxed);
}

void ChaosProxy::kill(Conn& conn, bool with_rst) {
  if (conn.dead) {
    return;
  }
  if (with_rst && conn.fd[0] >= 0) {
    // linger(0): close() sends RST instead of FIN, so the client sees
    // ECONNRESET — the "switch ate my connection" failure mode.
    linger lg{1, 0};
    ::setsockopt(conn.fd[0], SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  }
  for (int d = 0; d < 2; ++d) {
    if (conn.fd[d] >= 0) {
      ::close(conn.fd[d]);
      conn.fd[d] = -1;
    }
  }
  conn.dead = true;
}

/// Carves the next chunk out of `flow[direction]`'s backlog and applies
/// its hash-drawn fate.  Returns false when the connection died.
bool ChaosProxy::shape_chunk(Conn& conn, int direction) {
  auto& flow = conn.flow[direction];
  if (!flow.chunk.empty() || flow.backlog.empty()) {
    return true;
  }
  std::size_t len = flow.backlog.size();
  if (plan_.partial_cap > 0) {
    len = std::min(len, static_cast<std::size_t>(plan_.partial_cap));
  }
  flow.chunk.assign(flow.backlog.begin(),
                    flow.backlog.begin() + static_cast<std::ptrdiff_t>(len));
  flow.backlog.erase(flow.backlog.begin(),
                     flow.backlog.begin() + static_cast<std::ptrdiff_t>(len));
  flow.chunk_off = 0;
  flow.release = Clock::time_point::min();
  const std::uint64_t index = flow.chunk_index++;
  stats_.chunks.fetch_add(1, std::memory_order_relaxed);

  Fate fate = Fate::kDeliver;
  const std::uint64_t hash = chunk_hash(plan_.seed, conn.id, direction, index);
  if (index >= plan_.grace_chunks) {
    const double u = chunk_draw(hash);
    if (u < plan_.corrupt_probability) {
      fate = Fate::kCorrupt;
    } else if (u < plan_.corrupt_probability + plan_.stall_probability) {
      fate = Fate::kStall;
    } else if (u < plan_.corrupt_probability + plan_.stall_probability +
                       plan_.cut_probability) {
      fate = Fate::kCut;
    } else if (u < plan_.corrupt_probability + plan_.stall_probability +
                       plan_.cut_probability + plan_.rst_probability) {
      fate = Fate::kRst;
    }
  }
  switch (fate) {
    case Fate::kDeliver:
      break;
    case Fate::kCorrupt:
      // Any single-byte flip breaks the frame's FNV-1a checksum; the
      // position is hash-derived so replays corrupt the same byte.
      flow.chunk[mix64(hash) % flow.chunk.size()] ^= 0x5A;
      stats_.corrupted.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fate::kStall:
      flow.release = Clock::now() + std::chrono::milliseconds(plan_.stall_ms);
      stats_.stalled.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fate::kCut:
      // Forward a torn prefix, then hang up: the receiver holds half a
      // frame and then sees EOF.
      flow.chunk.resize((flow.chunk.size() + 1) / 2);
      flow.cut_after_chunk = true;
      stats_.cut.fetch_add(1, std::memory_order_relaxed);
      break;
    case Fate::kRst:
      stats_.rst.fetch_add(1, std::memory_order_relaxed);
      kill(conn, /*with_rst=*/true);
      return false;
  }
  return true;
}

/// Writes the current chunk toward fd[1 - direction].  Returns false
/// when the connection died.
bool ChaosProxy::flush_chunk(Conn& conn, int direction) {
  auto& flow = conn.flow[direction];
  const int dst = conn.fd[1 - direction];
  while (!flow.chunk.empty() && Clock::now() >= flow.release) {
    const ssize_t n =
        ::send(dst, flow.chunk.data() + flow.chunk_off,
               flow.chunk.size() - flow.chunk_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;  // destination full: re-poll
      }
      kill(conn, /*with_rst=*/false);
      return false;
    }
    flow.chunk_off += static_cast<std::size_t>(n);
    if (flow.chunk_off == flow.chunk.size()) {
      flow.chunk.clear();
      flow.chunk_off = 0;
      if (flow.cut_after_chunk) {
        kill(conn, /*with_rst=*/false);
        return false;
      }
      if (!shape_chunk(conn, direction)) {
        return false;
      }
    }
  }
  // Propagate EOF once everything read before it has been relayed.
  if (flow.src_eof && flow.backlog.empty() && flow.chunk.empty() &&
      !flow.wr_shutdown) {
    ::shutdown(dst, SHUT_WR);
    flow.wr_shutdown = true;
  }
  return true;
}

void ChaosProxy::pump(Conn& conn) {
  for (int d = 0; d < 2 && !conn.dead; ++d) {
    if (!shape_chunk(conn, d)) {
      return;
    }
    if (!flush_chunk(conn, d)) {
      return;
    }
  }
  if (conn.flow[0].wr_shutdown && conn.flow[1].wr_shutdown) {
    kill(conn, /*with_rst=*/false);
  }
}

void ChaosProxy::run() {
  while (running_.load(std::memory_order_relaxed)) {
    std::vector<pollfd> pfds;
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    // Map pollfd index -> (conn index, side) for the dispatch below.
    std::vector<std::pair<std::size_t, int>> where;
    int timeout_ms = 200;
    const auto now = Clock::now();
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      Conn& conn = *conns_[i];
      if (conn.dead) {
        continue;
      }
      for (int d = 0; d < 2; ++d) {
        auto& flow = conn.flow[d];
        short events = 0;
        if (!flow.src_eof && flow.backlog.size() < kBacklogCap) {
          events |= POLLIN;
        }
        if (!flow.chunk.empty() && now >= flow.release) {
          // Waiting to write into the opposite fd.
          pfds.push_back({conn.fd[1 - d], POLLOUT, 0});
          where.emplace_back(i, 1 - d);
        }
        if (!flow.chunk.empty() && now < flow.release) {
          const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
              flow.release - now);
          timeout_ms = std::min<int>(
              timeout_ms, std::max<int>(1, static_cast<int>(left.count())));
        }
        if (events != 0) {
          pfds.push_back({conn.fd[d], events, 0});
          where.emplace_back(i, d);
        }
      }
    }
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    if (!running_.load(std::memory_order_relaxed)) {
      break;
    }
    if (pfds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof drain) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) {
      accept_one();
    }
    // Read newly arrived bytes, then pump every live connection (stall
    // releases fire on the poll timeout even with no fd activity).
    for (std::size_t p = 2; p < pfds.size(); ++p) {
      const auto [ci, side] = where[p - 2];
      Conn& conn = *conns_[ci];
      if (conn.dead || !(pfds[p].revents & (POLLIN | POLLERR | POLLHUP))) {
        continue;
      }
      auto& flow = conn.flow[side];
      std::uint8_t buf[kReadBuf];
      while (!flow.src_eof && flow.backlog.size() < kBacklogCap) {
        const ssize_t n = ::recv(conn.fd[side], buf, sizeof buf, 0);
        if (n > 0) {
          flow.backlog.insert(flow.backlog.end(), buf, buf + n);
          continue;
        }
        if (n == 0) {
          flow.src_eof = true;
          break;
        }
        if (errno == EINTR) {
          continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        kill(conn, /*with_rst=*/false);
        break;
      }
    }
    for (auto& conn : conns_) {
      if (!conn->dead) {
        pump(*conn);
      }
    }
    std::erase_if(conns_,
                  [](const std::unique_ptr<Conn>& c) { return c->dead; });
  }
}

}  // namespace congestbc::service
