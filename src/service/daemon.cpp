#include "service/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "congest/fault.hpp"
#include "core/runner.hpp"
#include "obs/phase_profile.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "portfolio/backend.hpp"
#include "service/client.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/fingerprint.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc::service {

namespace fs = std::filesystem;

namespace {

/// Version of the spool file payloads (job-*.req, res-*.res).
constexpr std::uint64_t kSpoolVersion = 1;

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return std::string(buf);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// The servable block of an outcome — complete or partial harvest alike.
ResultBlock outcome_to_block(const RunOutcome& outcome) {
  ResultBlock block;
  block.run_status = static_cast<std::uint8_t>(outcome.status);
  block.detail = outcome.detail;
  block.rounds = outcome.result.rounds;
  block.diameter = outcome.result.diameter;
  block.total_bits = outcome.result.metrics.total_bits;
  block.total_physical_messages = outcome.result.metrics.total_physical_messages;
  block.betweenness = outcome.result.betweenness;
  block.closeness = outcome.result.closeness;
  block.graph_centrality = outcome.result.graph_centrality;
  block.stress = outcome.result.stress;
  block.eccentricities = outcome.result.eccentricities;
  return block;
}

/// Atomic small-file write (temp + rename), matching the checkpoint
/// subsystem's crash-safety discipline.
void write_file_atomic(const fs::path& target, const BitWriter& payload) {
  fs::create_directories(target.parent_path());
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    write_snapshot_container(out, payload);
    if (!out) {
      throw SnapshotError("cannot write " + tmp.string());
    }
  }
  fs::rename(tmp, target);
}

/// Atomic plain-text write for the stream log files (base edge lists,
/// batch files) — same temp + rename discipline.
void write_text_atomic(const fs::path& target, const std::string& text) {
  fs::create_directories(target.parent_path());
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) {
      throw std::runtime_error("cannot write " + tmp.string());
    }
  }
  fs::rename(tmp, target);
}

/// Cache key of an incremental result: the classic run fingerprint
/// folded with a domain tag.  Incremental scores are bit-identical to a
/// from-scratch *decomposed* recompute, not to a combined engine run
/// over the same graph/options, so the two product families must never
/// share cache entries.
std::uint64_t tagged_incremental_fingerprint(std::uint64_t run_fp) {
  static const std::uint8_t kTag[] = {'i', 'n', 'c', '-', 'b', 'c'};
  return fnv1a_u64(run_fp, fnv1a(kTag, sizeof kTag));
}

/// "host:port" → parts; false on anything that does not parse (the
/// daemon treats a bad --join target as "standalone" rather than dying).
bool split_host_port(const std::string& s, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(s.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return false;
  }
  host = s.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

/// Round number of a checkpoint file ("ckpt-000000000042.cbcsnap" → 42);
/// 0 when the name does not match the pattern.
std::uint64_t checkpoint_round_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.rfind("ckpt-", 0) != 0) {
    return 0;
  }
  return std::strtoull(name.c_str() + 5, nullptr, 10);
}

/// Stream namespace names become spool directory names, so they are
/// restricted to a filesystem-safe alphabet.
bool valid_stream_ns(const std::string& ns) {
  if (ns.empty() || ns.size() > 64) {
    return false;
  }
  for (const char c : ns) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) {
      return false;
    }
  }
  return true;
}

/// Batch file body: one canonical op per line, "i u v" / "d u v".
std::string format_stream_batch(const std::vector<GraphDeltaOp>& delta) {
  std::string text;
  for (const GraphDeltaOp& op : delta) {
    text += op.insert ? 'i' : 'd';
    text += ' ';
    text += std::to_string(op.u);
    text += ' ';
    text += std::to_string(op.v);
    text += '\n';
  }
  return text;
}

/// Parses a batch file back into wire ops (replayed through
/// VersionedGraph::apply, which re-canonicalizes them against the same
/// graph state and therefore reproduces the same delta + fingerprint).
std::vector<stream::EdgeOp> parse_stream_batch(std::istream& in) {
  std::vector<stream::EdgeOp> ops;
  std::string kind;
  unsigned long long u = 0;
  unsigned long long v = 0;
  while (in >> kind >> u >> v) {
    if (kind != "i" && kind != "d") {
      throw std::runtime_error("bad stream batch op kind: " + kind);
    }
    stream::EdgeOp op;
    op.kind = kind == "i" ? stream::EdgeOpKind::kInsert
                          : stream::EdgeOpKind::kRemove;
    op.u = static_cast<NodeId>(u);
    op.v = static_cast<NodeId>(v);
    ops.push_back(op);
  }
  return ops;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), cache_(config_.cache_capacity) {}

Daemon::~Daemon() {
  request_drain();
  wait();
  if (pool_) {
    pool_->stop();
  }
  for (auto& session : sessions_) {
    close_fd(session->fd);
  }
  sessions_.clear();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void Daemon::start() {
  if (started_) {
    return;
  }
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("pipe() failed: " + std::string(std::strerror(errno)));
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  pool_ = std::make_unique<WorkerPool>(config_.workers);
  if (!config_.spool_dir.empty()) {
    fs::create_directories(config_.spool_dir);
    recover_spool();
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("socket() failed: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw std::runtime_error("bind() failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 1024) != 0) {
    throw std::runtime_error("listen() failed: " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
  last_metrics_dump_ = std::chrono::steady_clock::now();
  if (!config_.join_router.empty()) {
    // Best-effort: the router may not be up yet; the heartbeat in
    // poll_tick_housekeeping keeps retrying (and heals evictions).
    announce_join();
    last_join_ = std::chrono::steady_clock::now();
  }
  started_ = true;
}

void Daemon::serve_async() {
  serve_thread_ = std::thread([this] { serve(); });
}

void Daemon::wait() {
  if (serve_thread_.joinable()) {
    serve_thread_.join();
  }
}

void Daemon::request_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Daemon::notify_signal() {
  // Async-signal-safe by construction: a lock-free atomic store and one
  // write(2) on a nonblocking pipe — no locks, no allocation, no stdio.
  drain_requested_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

StatsReply Daemon::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_locked();
}

StatsReply Daemon::stats_locked() {
  double utilization = 0.0;
  const double uptime_ns = static_cast<double>(metrics_.uptime_ms()) * 1e6;
  if (pool_ && uptime_ns > 0.0) {
    utilization = static_cast<double>(pool_->busy_nanos()) /
                  (uptime_ns * static_cast<double>(pool_->threads()));
    utilization = std::clamp(utilization, 0.0, 1.0);
  }
  std::uint64_t graph_version = 0;
  for (const auto& [ns, state] : streams_) {
    graph_version = std::max(graph_version, state.graph->version());
  }
  return metrics_.snapshot(queue_.size(), running_,
                           pool_ ? pool_->threads() : 0, cache_.size(),
                           cache_.hits(), cache_.misses(), cache_.evictions(),
                           utilization, graph_version);
}

// --------------------------------------------------------- poll loop

void Daemon::serve() {
  std::vector<pollfd> fds;
  while (true) {
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    int listen_idx = -1;
    if (!draining_ && listen_fd_ >= 0) {
      listen_idx = static_cast<int>(fds.size());
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    }
    const std::size_t base = fds.size();
    for (const auto& session : sessions_) {
      short events = 0;
      // Backpressure: a session sitting on too much un-flushed reply data
      // stops being read (and TCP pushes back on the peer) until the
      // backlog drains.
      if (!session->close_after_flush &&
          session->pending_out() <= config_.session_out_limit) {
        events |= POLLIN;
      }
      if (session->out_pos < session->out.size()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{session->fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc < 0 && errno != EINTR) {
      break;  // unrecoverable poll failure; fall through to drain
    }

    if (fds[0].revents & POLLIN) {
      std::uint8_t buf[64];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      std::lock_guard<std::mutex> lock(mutex_);
      begin_drain_locked();
    }
    if (!draining_ && listen_idx >= 0 &&
        (fds[static_cast<std::size_t>(listen_idx)].revents & POLLIN)) {
      accept_clients();
    }
    for (std::size_t i = 0; i < sessions_.size() && base + i < fds.size(); ++i) {
      Session& session = *sessions_[i];
      const short revents = fds[base + i].revents;
      if (revents & (POLLIN | POLLERR | POLLHUP)) {
        handle_session_input(session);
      }
      // Run the dispatch loop every tick, not just on input: frames held
      // back by output backpressure resume once the backlog drains.
      if (!session.dead && !session.close_after_flush) {
        process_session_frames(session);
      }
      if (!session.dead && session.out_pos < session.out.size()) {
        flush_session_output(session);
      }
    }
    sessions_.erase(
        std::remove_if(sessions_.begin(), sessions_.end(),
                       [](const std::unique_ptr<Session>& s) {
                         if (s->dead) {
                           int fd = s->fd;
                           close_fd(fd);
                           return true;
                         }
                         return false;
                       }),
        sessions_.end());

    poll_tick_housekeeping();

    if (draining_) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (drain_complete_locked()) {
        break;
      }
    }
  }
  finish_drain();
}

void Daemon::accept_clients() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN/EWOULDBLOCK or transient accept failure
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sessions_.push_back(std::make_unique<Session>(fd, config_.max_frame_bytes));
  }
}

void Daemon::handle_session_input(Session& session) {
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::recv(session.fd, buf, sizeof buf, 0);
    if (n > 0) {
      feed_session_bytes(session, buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) {
        break;
      }
      continue;
    }
    if (n == 0) {
      session.dead = true;  // peer closed; nothing more to serve
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    session.dead = true;
    return;
  }
}

// Hard cap on a buffered HTTP request: /metrics needs one short line,
// so anything larger is hostile.
constexpr std::size_t kMaxHttpRequestBytes = 8192;

void Daemon::feed_session_bytes(Session& session, const std::uint8_t* data,
                                std::size_t n) {
  if (session.mode == Session::Mode::kFrames) {
    session.decoder.feed(data, n);
    return;
  }
  session.sniff.insert(session.sniff.end(), data, data + n);
  if (session.mode == Session::Mode::kUnknown) {
    if (session.sniff.size() < 4) {
      return;  // not enough bytes to tell HTTP from CBCP yet
    }
    if (std::memcmp(session.sniff.data(), "GET ", 4) == 0) {
      session.mode = Session::Mode::kHttp;
    } else {
      session.mode = Session::Mode::kFrames;
      session.decoder.feed(session.sniff.data(), session.sniff.size());
      session.sniff.clear();
      session.sniff.shrink_to_fit();
      return;
    }
  }
  if (session.sniff.size() > kMaxHttpRequestBytes) {
    session.dead = true;
  }
}

void Daemon::process_http_request(Session& session) {
  static constexpr char kTerminator[] = "\r\n\r\n";
  const auto end = std::search(session.sniff.begin(), session.sniff.end(),
                               kTerminator, kTerminator + 4);
  if (end == session.sniff.end()) {
    return;  // headers still arriving
  }
  // Request line: "GET <path> HTTP/1.x".
  std::string line(session.sniff.begin(),
                   std::find(session.sniff.begin(), session.sniff.end(), '\r'));
  std::string path;
  const std::size_t sp1 = line.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    path = line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                         : sp2 - sp1 - 1);
  }
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    std::lock_guard<std::mutex> lock(mutex_);
    body = prometheus_text(stats_locked(), metrics_.latency_ms_hist,
                           metrics_.job_rounds_hist,
                           metrics_.round_throughput_hist);
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found; try /metrics\n";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  session.out.insert(session.out.end(), response.begin(), response.end());
  session.sniff.clear();
  session.close_after_flush = true;  // one request per connection
}

// Deframe + dispatch.  Any protocol violation gets one typed ERROR
// frame, then the connection is closed after the flush — a hostile or
// corrupted stream cannot be resynchronized safely.  The loop pauses
// while the session's un-flushed output exceeds its backpressure limit;
// buffered frames stay in the decoder until the backlog drains.
void Daemon::process_session_frames(Session& session) {
  if (session.mode == Session::Mode::kHttp) {
    process_http_request(session);
    return;
  }
  try {
    while (session.pending_out() <= config_.session_out_limit) {
      auto frame = session.decoder.next();
      if (!frame) {
        break;
      }
      const Request request = decode_request(*frame);
      append_reply(session, dispatch(request));
    }
  } catch (const ProtocolError& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++metrics_.protocol_errors;
    }
    Reply reply;
    reply.type = MsgType::kError;
    reply.error.code = e.code();
    reply.error.message = e.what();
    append_reply(session, reply);
    session.close_after_flush = true;
  } catch (const std::exception& e) {
    // Never-crash backstop: anything that escapes the typed path (an
    // allocation failure on a hostile size, an invariant trip) costs the
    // offending session its connection, not the daemon its life.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++metrics_.protocol_errors;
    }
    Reply reply;
    reply.type = MsgType::kError;
    reply.error.code = ProtoError::kBadRequest;
    reply.error.message = std::string("internal error: ") + e.what();
    append_reply(session, reply);
    session.close_after_flush = true;
  }
}

void Daemon::append_reply(Session& session, const Reply& reply) {
  const std::vector<std::uint8_t> bytes = frame_bytes(encode_reply(reply));
  session.out.insert(session.out.end(), bytes.begin(), bytes.end());
}

void Daemon::flush_session_output(Session& session) {
  while (session.out_pos < session.out.size()) {
    const ssize_t n =
        ::send(session.fd, session.out.data() + session.out_pos,
               session.out.size() - session.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      session.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    session.dead = true;
    return;
  }
  session.out.clear();
  session.out_pos = 0;
  if (session.close_after_flush) {
    session.dead = true;
  }
}

void Daemon::poll_tick_housekeeping() {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (config_.job_time_budget_ms != 0) {
      // Only queued/running jobs live in the coalescing map, so this scan
      // is bounded by queue_limit + workers, not by the job table.
      for (auto& [fp, job] : inflight_) {
        if (job->state != JobState::kRunning || job->budget_exceeded) {
          continue;
        }
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                  job->started)
                .count();
        if (elapsed >= 0 &&
            static_cast<std::uint64_t>(elapsed) > config_.job_time_budget_ms) {
          job->budget_exceeded = true;
          job->halt.store(true, std::memory_order_relaxed);
        }
      }
    }
    // Client deadlines: a queued job whose submitter's budget ran out
    // fails on the spot (it will never be collected); a running one is
    // asked to halt at its next round boundary and fails in
    // execute_job's completion path.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      const std::shared_ptr<Job> job = it->second;
      if (job->deadline == std::chrono::steady_clock::time_point::max() ||
          now < job->deadline) {
        ++it;
        continue;
      }
      if (job->state == JobState::kQueued) {
        job->state = JobState::kFailed;
        job->detail = "client deadline expired before the job started";
        const auto pos = std::find(queue_.begin(), queue_.end(), job);
        if (pos != queue_.end()) {
          queue_.erase(pos);
        }
        ++metrics_.jobs_failed;
        ++metrics_.deadline_expired;
        mark_terminal_locked(job);
        retire_job_locked(*job);
        it = inflight_.erase(it);
        continue;
      }
      if (job->state == JobState::kRunning && !job->deadline_exceeded) {
        job->deadline_exceeded = true;
        job->halt.store(true, std::memory_order_relaxed);
      }
      ++it;
    }
    gc_jobs_locked(now);
  }
  if (!config_.metrics_path.empty() && config_.metrics_every_ms != 0) {
    const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - last_metrics_dump_)
                           .count();
    if (since >= 0 &&
        static_cast<std::uint64_t>(since) >= config_.metrics_every_ms) {
      dump_metrics();
      last_metrics_dump_ = now;
    }
  }
  if (!config_.join_router.empty() && !draining_ &&
      config_.join_every_ms != 0) {
    const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - last_join_)
                           .count();
    if (since >= 0 &&
        static_cast<std::uint64_t>(since) >= config_.join_every_ms) {
      announce_join();
      last_join_ = now;
    }
  }
}

// ------------------------------------------------------------- drain

void Daemon::begin_drain_locked() {
  if (draining_) {
    return;
  }
  draining_ = true;
  drain_requested_.store(true, std::memory_order_relaxed);
  close_fd(listen_fd_);
  // Queued-but-unstarted jobs: suspend on the spot.  Their spool entries
  // (written at admission) are what a restarted daemon re-enqueues.
  for (const auto& job : queue_) {
    job->state = JobState::kSuspended;
    job->detail = config_.spool_dir.empty()
                      ? "daemon drained before the job started (no spool "
                        "directory; resubmit after restart)"
                      : "daemon drained before the job started; spooled for "
                        "restart";
    ++metrics_.jobs_suspended;
    inflight_.erase(job->fingerprint);
  }
  queue_.clear();
  // Running jobs: cooperative halt — each suspends at its next round
  // boundary, writing the suspension checkpoint when a spool is set.
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning) {
      job->halt.store(true, std::memory_order_relaxed);
    }
  }
}

bool Daemon::drain_complete_locked() const { return running_ == 0; }

void Daemon::finish_drain() {
  if (pool_) {
    pool_->stop();
  }
  if (!config_.spool_dir.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    flush_cache_index_locked();
  }
  // Best-effort flush of replies already queued (e.g. the SHUTDOWN ack),
  // bounded so a stuck client cannot wedge the exit.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  bool pending = true;
  while (pending && std::chrono::steady_clock::now() < deadline) {
    pending = false;
    for (auto& session : sessions_) {
      if (!session->dead && session->out_pos < session->out.size()) {
        flush_session_output(*session);
        pending |= !session->dead && session->out_pos < session->out.size();
      }
    }
    if (pending) {
      ::poll(nullptr, 0, 10);
    }
  }
  // Sessions close BEFORE migration: the router is one of them, and its
  // io thread must not sit in a poll this daemon will never answer while
  // that same thread is the one that has to forward our MIGRATEs — the
  // instant EOF frees it (and tells it to stop routing polls here).
  for (auto& session : sessions_) {
    close_fd(session->fd);
  }
  sessions_.clear();
  if (!config_.join_router.empty()) {
    // Transplant suspended jobs (and unfetched results) to a surviving
    // worker via the router, then leave the ring — before the final
    // metrics dump so migrated_out makes the last snapshot.
    migrate_suspended_jobs();
  }
  if (!config_.metrics_path.empty()) {
    dump_metrics();
  }
}

// -------------------------------------------- cluster membership (v6)

std::string Daemon::worker_id() const {
  const std::string& host =
      config_.advertise_host.empty() ? config_.host : config_.advertise_host;
  return host + ":" + std::to_string(port_);
}

void Daemon::announce_join() {
  std::string host;
  std::uint16_t port = 0;
  if (!split_host_port(config_.join_router, host, port)) {
    return;
  }
  try {
    Client client;
    // Short budget: this runs on the io thread, and a dead router must
    // not stall serving for more than a heartbeat's fraction.
    client.connect(host, port, 250);
    JoinRequest join;
    join.worker_id = worker_id();
    join.host =
        config_.advertise_host.empty() ? config_.host : config_.advertise_host;
    join.port = port_;
    (void)client.join(join);
  } catch (const std::exception&) {
    // Best-effort; the next heartbeat retries.
  }
}

void Daemon::migrate_suspended_jobs() {
  std::string host;
  std::uint16_t port = 0;
  if (!split_host_port(config_.join_router, host, port)) {
    return;
  }
  // Assemble the transplants under the lock, do wire I/O outside it.
  // Incremental (stream) jobs never migrate: their tagged fingerprint is
  // not recomputable from a submit alone, and the maintainer state they
  // need is rebuilt from the stream log wherever they re-run.
  std::vector<MigrateRequest> outgoing;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unordered_set<std::uint64_t> seen;
    for (const auto& [id, job] : jobs_) {
      if (!job->stream_ns.empty() || job->request.graph.empty() ||
          !seen.insert(job->fingerprint).second) {
        continue;
      }
      if (job->state == JobState::kSuspended) {
        MigrateRequest m;
        m.kind = MigrateKind::kResume;
        m.fingerprint = job->fingerprint;
        m.origin_job_id = job->id;
        m.origin_worker = worker_id();
        m.submit = job->request;
        if (!config_.spool_dir.empty()) {
          // Newest checkpoint that decodes travels along; invalid ones
          // fall back to the next-oldest, worst case a from-scratch
          // re-run on the target (still bit-identical).
          const std::vector<std::string> checkpoints =
              list_checkpoints(ckpt_dir(job->fingerprint));
          for (auto ck = checkpoints.rbegin(); ck != checkpoints.rend();
               ++ck) {
            std::ifstream in(*ck, std::ios::binary);
            if (!in) {
              continue;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            const std::string bytes = buffer.str();
            try {
              std::istringstream check(bytes);
              (void)read_snapshot_container(check);
            } catch (const std::exception&) {
              continue;
            }
            m.snapshot_round = checkpoint_round_of(*ck);
            m.snapshot_bytes.assign(bytes.begin(), bytes.end());
            break;
          }
        }
        outgoing.push_back(std::move(m));
      } else if (job->state == JobState::kDone && job->result != nullptr) {
        // Unfetched finished work: ship the encoded block so a client
        // polling through the router still gets its bytes after this
        // worker is gone.
        MigrateRequest m;
        m.kind = MigrateKind::kResult;
        m.fingerprint = job->fingerprint;
        m.origin_job_id = job->id;
        m.origin_worker = worker_id();
        m.submit = job->request;
        m.block_bytes = job->result->block_bytes;
        m.block_bits = job->result->block_bits;
        outgoing.push_back(std::move(m));
      }
    }
  }

  std::vector<std::uint64_t> resumed_elsewhere;
  std::uint64_t shipped = 0;
  try {
    Client client;
    client.connect(host, port, 5000);
    for (const MigrateRequest& m : outgoing) {
      try {
        const MigrateReply reply = client.migrate(m);
        if (reply.outcome == MigrateOutcome::kAccepted ||
            reply.outcome == MigrateOutcome::kCoalesced) {
          ++shipped;
          if (m.kind == MigrateKind::kResume) {
            resumed_elsewhere.push_back(m.fingerprint);
          }
        }
      } catch (const std::exception&) {
        // This transplant stays local (spool entry intact); keep going.
      }
    }
    LeaveRequest leave;
    leave.worker_id = worker_id();
    (void)client.leave(leave);
  } catch (const std::exception&) {
    // No router reachable: everything stays in the local spool, exactly
    // as a standalone drain would leave it.
  }

  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.migrated_out += shipped;
  for (const std::uint64_t fp : resumed_elsewhere) {
    // The job now lives on another worker.  Release the local spool
    // entry (journal first, the usual crash-safety order) so a restarted
    // daemon cannot re-run work that migrated — that would be the
    // cluster-level double execution the coalescing map exists to stop.
    for (const auto& [id, job] : jobs_) {
      if (job->fingerprint == fp && job->state == JobState::kSuspended) {
        if (journal_) {
          journal_->append(SpoolJournal::Record::kTerminal, fp);
        }
        spool_remove_job(*job);
        break;
      }
    }
  }
}

// -------------------------------------------------- request handling

Reply Daemon::dispatch(const Request& request) {
  Reply reply;
  switch (request.type) {
    case MsgType::kSubmit:
      reply.type = MsgType::kSubmitReply;
      reply.submit = handle_submit(request.submit);
      break;
    case MsgType::kMutate:
      reply.type = MsgType::kMutateReply;
      reply.mutate = handle_mutate(request.mutate);
      break;
    case MsgType::kStatus:
      reply.type = MsgType::kStatusReply;
      reply.status = handle_status(request.job.job_id);
      break;
    case MsgType::kResult:
      reply.type = MsgType::kResultReply;
      reply.result = handle_result(request.job.job_id);
      break;
    case MsgType::kCancel:
      reply.type = MsgType::kCancelReply;
      reply.cancel = handle_cancel(request.job.job_id);
      break;
    case MsgType::kStats:
      reply.type = MsgType::kStatsReply;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        reply.stats = stats_locked();
      }
      break;
    case MsgType::kShutdown:
      reply.type = MsgType::kShutdownReply;
      reply.shutdown = handle_shutdown();
      break;
    case MsgType::kJoin:
      // Workers hold no ring; a JOIN aimed at a worker is a client
      // misconfiguration, answered in-protocol rather than with an error
      // so the sender sees *why* instead of losing the connection.
      reply.type = MsgType::kJoinReply;
      reply.join.accepted = false;
      reply.join.detail = "not a router (point --join at congestbc_router)";
      break;
    case MsgType::kLeave:
      reply.type = MsgType::kLeaveReply;
      reply.leave.removed = false;
      break;
    case MsgType::kMigrate:
      reply.type = MsgType::kMigrateReply;
      reply.migrate = handle_migrate(request.migrate);
      break;
    case MsgType::kLookup:
      reply.type = MsgType::kLookupReply;
      reply.lookup = handle_lookup(request.lookup);
      break;
    default:
      throw ProtocolError(ProtoError::kUnknownType, "unhandled request type");
  }
  return reply;
}

void Daemon::parse_submit(const SubmitRequest& request, Graph& graph,
                          std::optional<Digraph>& digraph,
                          DistributedBcOptions& options,
                          SubmitRequest& canonical) const {
  std::string text;
  if (request.source == GraphSource::kPath) {
    if (config_.graph_root.empty()) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "path submits disabled (daemon has no --graph-root)");
    }
    std::error_code ec;
    const fs::path root = fs::weakly_canonical(config_.graph_root, ec);
    const fs::path resolved =
        fs::weakly_canonical(fs::path(config_.graph_root) / request.graph, ec);
    const std::string root_prefix = root.string() + "/";
    if (ec || (resolved.string() != root.string() &&
               resolved.string().rfind(root_prefix, 0) != 0)) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "graph path escapes --graph-root");
    }
    std::ifstream in(resolved, std::ios::binary);
    if (!in) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "cannot open graph file: " + resolved.string());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    text = request.graph;
  }
  if (request.backend > static_cast<std::uint8_t>(BackendId::kSampled)) {
    throw ProtocolError(ProtoError::kBadRequest, "unknown backend id");
  }
  const auto backend = static_cast<BackendId>(request.backend);
  if ((backend == BackendId::kCfp || backend == BackendId::kDirected) &&
      (!request.faults.empty() || request.reliable)) {
    // These backends have no fault/transport story (their CBC_EXPECTS
    // would fire mid-run); reject at admission with a typed reason.
    throw ProtocolError(ProtoError::kBadRequest,
                        std::string("backend '") + to_string(backend) +
                            "' does not support fault injection or the "
                            "reliable transport");
  }
  if (backend == BackendId::kDirected) {
    // The directed backend reads orientation: its own edge-list dialect,
    // its own connectivity precondition (weak, not strong).
    try {
      digraph = read_directed_edge_list_text(text);
    } catch (const std::exception& e) {
      throw ProtocolError(ProtoError::kBadRequest,
                          std::string("bad directed graph: ") + e.what());
    }
    if (digraph->num_nodes() == 0) {
      throw ProtocolError(ProtoError::kBadRequest, "empty graph");
    }
    if (!is_weakly_connected(*digraph)) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "digraph is not weakly connected (directed "
                          "backend precondition)");
    }
  } else {
    try {
      graph = read_edge_list_text(text);
    } catch (const std::exception& e) {
      throw ProtocolError(ProtoError::kBadRequest,
                          std::string("bad graph: ") + e.what());
    }
    if (graph.num_nodes() == 0) {
      throw ProtocolError(ProtoError::kBadRequest, "empty graph");
    }
    if (!is_connected(graph)) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "graph is not connected (model precondition)");
    }
  }
  FaultPlan plan;
  if (!request.faults.empty()) {
    try {
      plan = FaultPlan::parse(request.faults);
    } catch (const std::exception& e) {
      throw ProtocolError(ProtoError::kBadRequest,
                          std::string("bad fault spec: ") + e.what());
    }
  }
  options = DistributedBcOptions{};
  options.halve = request.halve;
  options.reliable_transport = request.reliable;
  options.faults = std::move(plan);
  options.max_rounds = request.max_rounds == 0
                           ? config_.max_rounds_cap
                           : std::min(request.max_rounds, config_.max_rounds_cap);
  options.threads = request.threads == 0 ? config_.default_threads
                                         : static_cast<unsigned>(request.threads);
  options.legacy_engine = request.legacy_engine;
  // v6 engine hint: a pure execution knob (all engines are bit-identical,
  // so it is excluded from the fingerprint); the legacy_engine flag keeps
  // winning for pre-v6 clients.
  if (request.engine > static_cast<std::uint8_t>(EngineKind::kLegacy)) {
    throw ProtocolError(ProtoError::kBadRequest, "unknown engine id");
  }
  options.engine = static_cast<EngineKind>(request.engine);
  // v5 portfolio fields.  kAuto stays unresolved here — handle_submit
  // resolves it under the scheduler lock where queue pressure is
  // observable, before anything fingerprints.  The approximation params
  // only determine the result under the sampled backend; canonicalize
  // them away elsewhere (mirrors options_fingerprint).
  options.backend = backend;
  if (backend == BackendId::kSampled) {
    options.approx_samples = request.samples;
    options.approx_seed = request.sample_seed;
  }

  // Canonical form: always inline, graph re-serialized, budgets resolved —
  // so the spool is self-contained and a resubmit of either form
  // fingerprints identically.
  canonical = request;
  canonical.source = GraphSource::kInline;
  canonical.graph = backend == BackendId::kDirected
                        ? write_directed_edge_list_text(*digraph)
                        : write_edge_list_text(graph);
  canonical.max_rounds = options.max_rounds;
  canonical.samples = backend == BackendId::kSampled ? request.samples : 0;
  canonical.sample_seed =
      backend == BackendId::kSampled ? request.sample_seed : 0;
  // Retry metadata never reaches the spool or the fingerprint: attempt 3
  // of a submit must coalesce with attempt 1.
  canonical.deadline_ms = 0;
  canonical.attempt = 1;
  // Stream addressing is resolved to the inline text above before
  // parse_submit runs, so the canonical form (and with it the spool and
  // the fingerprint) is self-contained: a version-addressed submit
  // fingerprints identically to an inline submit of the same edges.
  canonical.stream_ns.clear();
  canonical.stream_version = 0;
  canonical.incremental = false;
}

std::uint64_t Daemon::resolve_stream_submit(SubmitRequest& request) {
  if (!request.graph.empty() || request.source == GraphSource::kPath) {
    throw ProtocolError(ProtoError::kBadRequest,
                        "stream-addressed submit must not carry a graph");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(request.stream_ns);
  if (it == streams_.end()) {
    throw ProtocolError(ProtoError::kBadRequest,
                        "unknown stream namespace: " + request.stream_ns);
  }
  const stream::VersionedGraph& vg = *it->second.graph;
  const std::uint64_t version =
      request.stream_version == 0 ? vg.version() : request.stream_version;
  if (version > vg.version()) {
    throw ProtocolError(ProtoError::kBadRequest,
                        "stream version " + std::to_string(version) +
                            " beyond head " + std::to_string(vg.version()));
  }
  request.source = GraphSource::kInline;
  request.graph = version == vg.version()
                      ? write_edge_list_text(vg.head())
                      : write_edge_list_text(vg.at(version));
  return version;
}

SubmitReply Daemon::handle_submit(const SubmitRequest& request) {
  Graph graph(0, {});
  std::optional<Digraph> digraph;
  DistributedBcOptions options;
  SubmitRequest canonical;
  std::string reject_detail;
  bool parsed = false;
  std::uint64_t stream_version = 0;
  try {
    SubmitRequest effective = request;
    if (!request.stream_ns.empty()) {
      if (effective.backend ==
          static_cast<std::uint8_t>(BackendId::kDirected)) {
        throw ProtocolError(ProtoError::kBadRequest,
                            "stream namespaces hold undirected graphs; the "
                            "directed backend cannot address them");
      }
      if (effective.incremental &&
          effective.backend !=
              static_cast<std::uint8_t>(BackendId::kPaperExact) &&
          effective.backend != static_cast<std::uint8_t>(BackendId::kAuto)) {
        throw ProtocolError(ProtoError::kBadRequest,
                            "incremental submits are served by the "
                            "paper_exact maintainer; pick backend "
                            "paper_exact or auto");
      }
      stream_version = resolve_stream_submit(effective);
      if (effective.incremental && !effective.faults.empty()) {
        throw ProtocolError(ProtoError::kBadRequest,
                            "incremental submit cannot carry a fault plan "
                            "(the maintainer assumes fault-free runs)");
      }
    } else if (request.incremental) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "incremental submit requires a stream namespace");
    }
    parse_submit(effective, graph, digraph, options, canonical);
    parsed = true;
  } catch (const std::exception& e) {
    reject_detail = e.what();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++metrics_.submits;
  if (request.attempt > 1) {
    ++metrics_.retried_submits;
  }
  SubmitReply reply;
  if (!parsed) {
    reply.disposition = SubmitDisposition::kRejected;
    reply.detail = reject_detail;
    return reply;
  }
  // Serve-time backend selection (v5): resolve backend=auto under the
  // scheduler lock, where queue depth and the latency estimate live.
  // Auto degrades to the sampled approximation when the queue is at
  // least half full, or when the client's deadline cannot plausibly
  // cover an exact run — and the downgrade is visible in the reply and
  // the backend_downgrades counter.  Incremental submits never
  // downgrade: the maintainer is already the fast path.
  bool downgraded = false;
  if (options.backend == BackendId::kAuto) {
    bool under_pressure = false;
    if (!request.incremental) {
      const bool queue_pressure = queue_.size() * 2 >= config_.queue_limit;
      const double p50 = metrics_.latency_percentile(50.0);
      const bool deadline_risk =
          request.deadline_ms != 0 &&
          p50 * static_cast<double>(queue_.size() + 1) >
              0.5 * static_cast<double>(request.deadline_ms);
      under_pressure = queue_pressure || deadline_risk;
    }
    options.backend =
        portfolio::resolve_auto_backend(BackendId::kAuto, under_pressure);
    downgraded = options.backend == BackendId::kSampled;
    if (downgraded) {
      ++metrics_.backend_downgrades;
      options.approx_samples = request.samples;
      options.approx_seed = request.sample_seed;
    }
  }
  // The canonical form (spool + fingerprint identity) carries the
  // *resolved* backend: recovery re-runs exactly what was decided here.
  canonical.backend = static_cast<std::uint8_t>(options.backend);
  canonical.samples =
      options.backend == BackendId::kSampled ? options.approx_samples : 0;
  canonical.sample_seed =
      options.backend == BackendId::kSampled ? options.approx_seed : 0;
  reply.backend = canonical.backend;
  reply.downgraded = downgraded;
  // Incremental results live under a tagged key: same graph + options,
  // different product family (decomposed vs combined summation).
  const std::uint64_t fp =
      digraph.has_value()
          ? run_fingerprint(*digraph, options)
          : (request.incremental
                 ? tagged_incremental_fingerprint(
                       run_fingerprint(graph, options))
                 : run_fingerprint(graph, options));
  reply.fingerprint = fp;
  if (!request.stream_ns.empty()) {
    // Track what this namespace's working set has cached so a MUTATE can
    // invalidate exactly these entries.
    const auto it = streams_.find(request.stream_ns);
    if (it != streams_.end()) {
      it->second.live_cache_fps.insert(fp);
    }
  }
  if (draining_) {
    ++metrics_.draining_rejections;
    reply.disposition = SubmitDisposition::kDraining;
    reply.detail = "daemon is draining";
    return reply;
  }
  if (auto cached = cache_.get(fp)) {
    auto job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->fingerprint = fp;
    job->state = JobState::kDone;
    job->result = std::move(cached);
    job->from_cache = true;
    job->submitted = std::chrono::steady_clock::now();
    jobs_.emplace(job->id, job);
    mark_terminal_locked(job);
    reply.disposition = SubmitDisposition::kCacheHit;
    reply.job_id = job->id;
    return reply;
  }
  if (const auto it = inflight_.find(fp); it != inflight_.end()) {
    ++metrics_.coalesced;
    // The coalesced job serves every submitter, so it lives until the
    // *latest* deadline among them — and forever if any submitter had
    // none (time_point::max() means "no deadline").
    if (request.deadline_ms == 0) {
      it->second->deadline = std::chrono::steady_clock::time_point::max();
    } else if (it->second->deadline !=
               std::chrono::steady_clock::time_point::max()) {
      it->second->deadline =
          std::max(it->second->deadline,
                   std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(request.deadline_ms));
    }
    reply.disposition = SubmitDisposition::kCoalesced;
    reply.job_id = it->second->id;
    return reply;
  }
  if (queue_.size() >= config_.queue_limit) {
    ++metrics_.busy_rejections;
    reply.disposition = SubmitDisposition::kBusy;
    reply.detail = "queue full (" + std::to_string(queue_.size()) + " queued)";
    return reply;
  }
  if (request.deadline_ms != 0) {
    // Deadline-aware admission: when the client's remaining budget cannot
    // plausibly cover queue wait + run (estimated from the p50 of recent
    // jobs), reject now so the client retries elsewhere or gives up —
    // instead of burning a worker on a result nobody will wait for.
    // With no latency history yet the estimate is zero and every deadline
    // is accepted.
    const double p50 = metrics_.latency_percentile(50.0);
    const double estimated_ms =
        p50 * static_cast<double>(queue_.size() + 1);
    if (estimated_ms > static_cast<double>(request.deadline_ms)) {
      ++metrics_.deadline_rejections;
      reply.disposition = SubmitDisposition::kDeadline;
      reply.detail = "deadline " + std::to_string(request.deadline_ms) +
                     " ms < estimated " +
                     std::to_string(static_cast<std::uint64_t>(estimated_ms)) +
                     " ms (p50 latency x queue depth)";
      return reply;
    }
  }
  auto job = std::make_shared<Job>();
  job->id = next_job_id_++;
  job->fingerprint = fp;
  job->request = std::move(canonical);
  job->graph = std::move(graph);
  job->digraph = std::move(digraph);
  job->options = std::move(options);
  if (request.incremental) {
    job->stream_ns = request.stream_ns;
    job->stream_version = stream_version;
  }
  job->submitted = std::chrono::steady_clock::now();
  if (request.deadline_ms != 0) {
    job->deadline =
        job->submitted + std::chrono::milliseconds(request.deadline_ms);
  }
  admit_locked(job);
  reply.disposition = SubmitDisposition::kQueued;
  reply.job_id = job->id;
  return reply;
}

MutateReply Daemon::handle_mutate(const MutateRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  MutateReply reply;
  if (draining_) {
    reply.outcome = MutateOutcome::kDraining;
    reply.detail = "daemon is draining";
    return reply;
  }
  if (!valid_stream_ns(request.ns)) {
    reply.outcome = MutateOutcome::kRejected;
    reply.detail = "bad namespace (1-64 chars of [A-Za-z0-9_-] required)";
    return reply;
  }
  std::vector<stream::EdgeOp> ops;
  ops.reserve(request.ops.size());
  for (const MutateOp& op : request.ops) {
    stream::EdgeOp e;
    e.kind = op.kind == 1 ? stream::EdgeOpKind::kInsert
                          : stream::EdgeOpKind::kRemove;
    e.u = op.u;
    e.v = op.v;
    ops.push_back(e);
  }

  auto it = streams_.find(request.ns);
  if (it == streams_.end()) {
    // Creation: the first MUTATE naming a namespace must carry the
    // version-0 graph and expect version 0; ops ride along as version 1.
    if (request.base_graph.empty()) {
      reply.outcome = MutateOutcome::kRejected;
      reply.detail =
          "unknown namespace '" + request.ns + "' (creation needs base_graph)";
      return reply;
    }
    if (request.base_version != 0) {
      reply.outcome = MutateOutcome::kRejected;
      reply.detail = "creation requires base_version 0";
      return reply;
    }
    Graph base(0, {});
    try {
      base = read_edge_list_text(request.base_graph);
    } catch (const std::exception& e) {
      reply.outcome = MutateOutcome::kRejected;
      reply.detail = std::string("bad base graph: ") + e.what();
      return reply;
    }
    if (base.num_nodes() == 0) {
      reply.outcome = MutateOutcome::kRejected;
      reply.detail = "empty base graph";
      return reply;
    }
    // Validate the ride-along batch before anything is committed, so a
    // bad batch rejects the whole creation.
    try {
      (void)stream::VersionedGraph::canonicalize(base, ops);
    } catch (const std::exception& e) {
      reply.outcome = MutateOutcome::kRejected;
      reply.detail = std::string("bad batch: ") + e.what();
      return reply;
    }
    StreamNamespace state;
    state.graph = std::make_unique<stream::VersionedGraph>(std::move(base));
    it = streams_.emplace(request.ns, std::move(state)).first;
    StreamNamespace& s = it->second;
    persist_stream_version(request.ns, s);  // version 0
    reply.outcome = MutateOutcome::kCreated;
    if (!ops.empty()) {
      const stream::ApplyOutcome out = s.graph->apply(ops);
      persist_stream_version(request.ns, s);  // version 1
      metrics_.mutations_applied += out.applied;
      reply.applied = out.applied;
      reply.dropped = out.dropped;
    }
    reply.version = s.graph->version();
    reply.fingerprint = s.graph->fingerprint();
    return reply;
  }

  StreamNamespace& s = it->second;
  if (!request.base_graph.empty()) {
    reply.outcome = MutateOutcome::kRejected;
    reply.detail = "base_graph is only valid when creating a namespace";
    return reply;
  }
  if (request.base_version != s.graph->version()) {
    // Optimistic concurrency: report the actual head so the client can
    // re-read and rebase its batch.
    reply.outcome = MutateOutcome::kVersionConflict;
    reply.version = s.graph->version();
    reply.fingerprint = s.graph->fingerprint();
    reply.detail = "expected base version " +
                   std::to_string(s.graph->version()) + ", got " +
                   std::to_string(request.base_version);
    return reply;
  }
  stream::ApplyOutcome out;
  try {
    out = s.graph->apply(ops);
  } catch (const std::exception& e) {
    reply.outcome = MutateOutcome::kRejected;
    reply.detail = std::string("bad batch: ") + e.what();
    return reply;
  }
  // Commit order: batch file, then journal record (fsynced), then the
  // reply the caller sends — an acknowledged version is always
  // replayable after a crash.
  persist_stream_version(request.ns, s);
  metrics_.mutations_applied += out.applied;
  invalidate_stream_cache_locked(s);
  reply.outcome = MutateOutcome::kApplied;
  reply.version = out.version;
  reply.fingerprint = out.fingerprint;
  reply.applied = out.applied;
  reply.dropped = out.dropped;
  return reply;
}

void Daemon::mark_terminal_locked(const std::shared_ptr<Job>& job) {
  job->terminal_at = std::chrono::steady_clock::now();
  terminal_order_.push_back(job->id);
}

void Daemon::gc_jobs_locked(std::chrono::steady_clock::time_point now) {
  // terminal_order_ is completion-ordered, so the front is always the
  // next eviction candidate; one pass never revisits survivors.
  while (!terminal_order_.empty()) {
    const auto it = jobs_.find(terminal_order_.front());
    if (it == jobs_.end()) {
      terminal_order_.pop_front();
      continue;
    }
    const bool over_cap = terminal_order_.size() > config_.job_retention_limit;
    bool expired = false;
    if (config_.job_retention_ms != 0) {
      const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - it->second->terminal_at)
                           .count();
      expired = age >= 0 &&
                static_cast<std::uint64_t>(age) >= config_.job_retention_ms;
    }
    if (!over_cap && !expired) {
      break;
    }
    jobs_.erase(it);
    terminal_order_.pop_front();
  }
}

void Daemon::admit_locked(const std::shared_ptr<Job>& job) {
  jobs_.emplace(job->id, job);
  inflight_.emplace(job->fingerprint, job);
  queue_.push_back(job);
  if (!config_.spool_dir.empty() && job->stream_ns.empty()) {
    try {
      spool_write_job(*job);
      // ADMIT lands only after the .req does: a journal entry without a
      // matching spool file would resurrect a job with no request body.
      if (journal_) {
        journal_->append(SpoolJournal::Record::kAdmit, job->fingerprint);
      }
    } catch (const std::exception&) {
      // Persistence is best-effort: the job still runs, it just cannot be
      // resumed across a restart.
    }
  }
  pool_->submit([this, job] { execute_job(job); });
}

StatusReply Daemon::handle_status(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  StatusReply reply;
  reply.job_id = job_id;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    reply.state = JobState::kUnknown;
    reply.detail = "no such job";
    return reply;
  }
  const Job& job = *it->second;
  reply.state = job.state;
  reply.fingerprint = job.fingerprint;
  reply.detail = job.detail;
  reply.phase_timeline = job.phase_timeline;
  if (job.state == JobState::kQueued) {
    const auto pos = std::find(queue_.begin(), queue_.end(), it->second);
    reply.queue_position =
        static_cast<std::uint32_t>(std::distance(queue_.begin(), pos));
  }
  return reply;
}

ResultReply Daemon::handle_result(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultReply reply;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    reply.state = JobState::kUnknown;
    reply.detail = "no such job";
    return reply;
  }
  const Job& job = *it->second;
  reply.state = job.state;
  reply.fingerprint = job.fingerprint;
  reply.detail = job.detail;
  reply.from_cache = job.from_cache;
  if ((job.state == JobState::kDone || job.state == JobState::kFailed) &&
      job.result != nullptr) {
    reply.ready = true;
    reply.block_bytes = job.result->block_bytes;
    reply.block_bits = job.result->block_bits;
  }
  return reply;
}

CancelReply Daemon::handle_cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CancelReply reply;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    reply.outcome = CancelOutcome::kNotFound;
    return reply;
  }
  const std::shared_ptr<Job>& job = it->second;
  switch (job->state) {
    case JobState::kQueued: {
      job->state = JobState::kCancelled;
      job->detail = "cancelled before start";
      const auto pos = std::find(queue_.begin(), queue_.end(), job);
      if (pos != queue_.end()) {
        queue_.erase(pos);
      }
      inflight_.erase(job->fingerprint);
      ++metrics_.jobs_cancelled;
      mark_terminal_locked(job);
      retire_job_locked(*job);
      reply.outcome = CancelOutcome::kCancelled;
      break;
    }
    case JobState::kRunning:
      // Cooperative and best-effort: the run usually suspends at its next
      // round boundary and the completion path discards it — but a run
      // that finishes before observing the halt still lands kDone.  The
      // reply says "requested", not "cancelled", for exactly that reason.
      job->cancel_requested = true;
      job->halt.store(true, std::memory_order_relaxed);
      reply.outcome = CancelOutcome::kRequested;
      break;
    default:
      reply.outcome = CancelOutcome::kTooLate;
      break;
  }
  return reply;
}

ShutdownReply Daemon::handle_shutdown() {
  request_drain();
  ShutdownReply reply;
  reply.draining = true;
  return reply;
}

MigrateReply Daemon::handle_migrate(const MigrateRequest& request) {
  MigrateReply reply;
  reply.fingerprint = request.fingerprint;

  // Validate before touching shared state, with the same distrust
  // recover_spool applies to its own .req files: the inner canonical
  // submit must parse, and its recomputed fingerprint must match the
  // wire claim — a corrupt or forged transplant is rejected, never run
  // (and never served) under the wrong identity.
  Graph graph(0, {});
  std::optional<Digraph> digraph;
  DistributedBcOptions options;
  SubmitRequest canonical;
  try {
    parse_submit(request.submit, graph, digraph, options, canonical);
  } catch (const std::exception& e) {
    reply.outcome = MigrateOutcome::kRejected;
    reply.detail = std::string("bad migrated submit: ") + e.what();
    return reply;
  }
  if (options.backend == BackendId::kAuto) {
    // The origin resolved auto at its own admission; re-resolving under
    // this worker's load could silently change the result family.
    reply.outcome = MigrateOutcome::kRejected;
    reply.detail = "migrated submit must carry a resolved backend";
    return reply;
  }
  const std::uint64_t recomputed = digraph.has_value()
                                       ? run_fingerprint(*digraph, options)
                                       : run_fingerprint(graph, options);
  if (recomputed != request.fingerprint) {
    reply.outcome = MigrateOutcome::kRejected;
    reply.detail = "fingerprint mismatch (transplant does not describe "
                   "its own payload)";
    return reply;
  }

  if (request.kind == MigrateKind::kResult) {
    // A finished block travels with its submit purely so the identity
    // check above can run; the block itself must decode too.
    auto cached = std::make_shared<CachedResult>();
    try {
      BitReader r(request.block_bytes.data(),
                  static_cast<std::size_t>(request.block_bits));
      const ResultBlock block = decode_result_block(r);
      cached->run_status = block.run_status;
    } catch (const std::exception& e) {
      reply.outcome = MigrateOutcome::kRejected;
      reply.detail = std::string("bad migrated block: ") + e.what();
      return reply;
    }
    cached->block_bytes = request.block_bytes;
    cached->block_bits = request.block_bits;

    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      reply.outcome = MigrateOutcome::kDraining;
      reply.detail = "target is draining";
      return reply;
    }
    const bool known = cache_.peek(request.fingerprint) != nullptr;
    if (!known) {
      cache_.put(request.fingerprint, cached);
      if (!config_.spool_dir.empty()) {
        try {
          persist_cache_entry(request.fingerprint, *cached);
        } catch (const std::exception&) {
          // Warm-cache persistence stays best-effort.
        }
      }
    }
    // Either way the transplant arrived and is honored here — a done job
    // is synthesized below and the router repoints the origin's id at it
    // — so it counts as migrated in even when the block was already
    // cached locally (cross-worker LOOKUP may have warmed it).
    ++metrics_.migrated_in;
    // Synthesize a done job either way so the router can repoint the
    // origin's job id here and clients keep polling RESULT untouched.
    auto job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->fingerprint = request.fingerprint;
    job->state = JobState::kDone;
    job->result = known ? cache_.get(request.fingerprint) : cached;
    job->from_cache = true;
    job->submitted = std::chrono::steady_clock::now();
    jobs_.emplace(job->id, job);
    mark_terminal_locked(job);
    reply.outcome =
        known ? MigrateOutcome::kCoalesced : MigrateOutcome::kAccepted;
    reply.job_id = job->id;
    return reply;
  }

  // kResume: validate the snapshot container (when one rides along)
  // before anything is admitted.
  if (!request.snapshot_bytes.empty()) {
    try {
      std::istringstream in(std::string(request.snapshot_bytes.begin(),
                                        request.snapshot_bytes.end()));
      (void)read_snapshot_container(in);
    } catch (const std::exception& e) {
      reply.outcome = MigrateOutcome::kRejected;
      reply.detail = std::string("bad migrated checkpoint: ") + e.what();
      return reply;
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    reply.outcome = MigrateOutcome::kDraining;
    reply.detail = "target is draining";
    return reply;
  }
  if (auto cached = cache_.get(request.fingerprint)) {
    // This worker already finished identical work: serve it instead of
    // re-running (the migrated snapshot is moot).
    auto job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->fingerprint = request.fingerprint;
    job->state = JobState::kDone;
    job->result = std::move(cached);
    job->from_cache = true;
    job->submitted = std::chrono::steady_clock::now();
    jobs_.emplace(job->id, job);
    mark_terminal_locked(job);
    reply.outcome = MigrateOutcome::kCoalesced;
    reply.job_id = job->id;
    return reply;
  }
  if (const auto it = inflight_.find(request.fingerprint);
      it != inflight_.end()) {
    ++metrics_.coalesced;
    reply.outcome = MigrateOutcome::kCoalesced;
    reply.job_id = it->second->id;
    return reply;
  }
  if (queue_.size() >= config_.queue_limit) {
    reply.outcome = MigrateOutcome::kRejected;
    reply.detail = "queue full; route the transplant elsewhere";
    return reply;
  }

  auto job = std::make_shared<Job>();
  job->id = next_job_id_++;
  job->fingerprint = request.fingerprint;
  job->request = std::move(canonical);
  job->graph = std::move(graph);
  job->digraph = std::move(digraph);
  job->options = std::move(options);
  job->submitted = std::chrono::steady_clock::now();
  if (!request.snapshot_bytes.empty() && !config_.spool_dir.empty()) {
    // Land the (already validated) container bytes in this worker's own
    // checkpoint directory, verbatim — the run then resumes from them
    // exactly as it would from a local suspension checkpoint.  Written
    // with the usual temp + rename discipline.  With no spool dir the
    // job simply re-runs from round zero, which is still bit-identical.
    try {
      const fs::path dir(ckpt_dir(request.fingerprint));
      fs::create_directories(dir);
      const fs::path target = dir / checkpoint_file_name(request.snapshot_round);
      const fs::path tmp = target.string() + ".tmp";
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(request.snapshot_bytes.data()),
                  static_cast<std::streamsize>(request.snapshot_bytes.size()));
        if (!out) {
          throw SnapshotError("cannot write " + tmp.string());
        }
      }
      fs::rename(tmp, target);
      job->resume_from = target.string();
    } catch (const std::exception&) {
      job->resume_from.clear();  // degrade to a from-scratch re-run
    }
  }
  ++metrics_.migrated_in;
  ++metrics_.submits;
  admit_locked(job);
  reply.outcome = MigrateOutcome::kAccepted;
  reply.job_id = job->id;
  return reply;
}

LookupReply Daemon::handle_lookup(const LookupRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  LookupReply reply;
  reply.fingerprint = request.fingerprint;
  if (auto cached = cache_.get(request.fingerprint)) {
    reply.found = true;
    reply.block_bytes = cached->block_bytes;
    reply.block_bits = cached->block_bits;
    ++metrics_.lookups_served;
  }
  return reply;
}

// --------------------------------------------------------- execution

void Daemon::execute_job(const std::shared_ptr<Job>& job) {
  if (!job->stream_ns.empty()) {
    execute_incremental_job(job);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->state != JobState::kQueued || draining_) {
      return;  // cancelled or suspended while waiting its turn
    }
    job->state = JobState::kRunning;
    job->started = std::chrono::steady_clock::now();
    ++running_;
    const auto pos = std::find(queue_.begin(), queue_.end(), job);
    if (pos != queue_.end()) {
      queue_.erase(pos);
    }
  }

  DistributedBcOptions options = job->options;
  options.halt_request = &job->halt;
  // Only the simulator-engine backends speak the checkpoint protocol;
  // cfp/directed reject those options loudly, and their runs are cheap
  // enough that drain just suspends them at a source boundary.
  const portfolio::BackendRegistry& registry =
      portfolio::BackendRegistry::instance();
  const portfolio::BcBackend* backend_impl = registry.find(options.backend);
  const bool checkpointable =
      backend_impl != nullptr && backend_impl->capabilities().simulator_engines;
  if (!config_.spool_dir.empty() && checkpointable) {
    options.checkpoint_dir = ckpt_dir(job->fingerprint);
    options.checkpoint_every = config_.checkpoint_every;
    options.checkpoint_keep_last = config_.checkpoint_keep;
    options.resume_from = job->resume_from;
  }

  RunOutcome outcome;
  try {
    portfolio::BackendRequest breq;
    if (job->digraph.has_value()) {
      breq.digraph = &*job->digraph;
    } else {
      breq.graph = &job->graph;
    }
    breq.options = options;
    outcome = portfolio::run_portfolio(breq);
  } catch (const std::exception& e) {
    outcome = RunOutcome{};
    outcome.status = RunStatus::kError;
    outcome.detail = e.what();
  }

  // Encode outside the lock — blocks can be large.
  const ResultBlock block = outcome_to_block(outcome);
  const BitWriter encoded = encode_result_block(block);
  auto servable = std::make_shared<CachedResult>();
  servable->block_bytes = encoded.bytes();
  servable->block_bits = encoded.bit_size();
  servable->run_status = block.run_status;
  // A block too large for one RESULT frame must fail here, with a typed
  // detail, rather than trip frame_bytes' invariant on the reply path.
  const bool block_servable = encoded.bit_size() <= kMaxServableBlockBits;
  const std::string unservable_detail =
      "result block (" + std::to_string((encoded.bit_size() + 7) / 8) +
      " bytes) exceeds the " + std::to_string(kMaxFramePayloadBytes >> 20) +
      " MiB frame cap; graph too large to serve over protocol v" +
      std::to_string(kProtocolVersion);

  std::lock_guard<std::mutex> lock(mutex_);
  if (running_ > 0) {
    --running_;
  }
  const double latency_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - job->submitted)
          .count();
  inflight_.erase(job->fingerprint);
  // Partial runs carry a (truncated) profile too — useful for debugging
  // a cancelled or over-budget job.
  job->phase_timeline =
      obs::format_phase_timeline(outcome.result.phase_profile);

  if (outcome.status == RunStatus::kSuspended) {
    if (job->cancel_requested) {
      job->state = JobState::kCancelled;
      job->detail = "cancelled while running";
      ++metrics_.jobs_cancelled;
      mark_terminal_locked(job);
      retire_job_locked(*job);
    } else if (job->budget_exceeded) {
      job->state = JobState::kFailed;
      job->detail = "wall-clock budget exceeded (" +
                    std::to_string(config_.job_time_budget_ms) + " ms)";
      if (block_servable) {
        job->result = servable;  // partial harvest, served but never cached
      } else {
        job->detail += "; " + unservable_detail;
      }
      ++metrics_.jobs_failed;
      metrics_.record_latency_ms(latency_ms);
      metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
      mark_terminal_locked(job);
      retire_job_locked(*job);
    } else if (job->deadline_exceeded) {
      job->state = JobState::kFailed;
      job->detail = "client deadline expired while the job ran";
      if (block_servable) {
        job->result = servable;  // partial harvest, served but never cached
      } else {
        job->detail += "; " + unservable_detail;
      }
      ++metrics_.jobs_failed;
      ++metrics_.deadline_expired;
      metrics_.record_latency_ms(latency_ms);
      metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
      mark_terminal_locked(job);
      retire_job_locked(*job);
    } else {
      // Drain suspension: the run just wrote its boundary checkpoint (when
      // a spool is configured); the spool entry stays for the restart.
      job->state = JobState::kSuspended;
      job->detail = config_.spool_dir.empty()
                        ? "suspended by drain (no spool directory; resubmit "
                          "after restart)"
                        : "suspended by drain; checkpointed for restart";
      ++metrics_.jobs_suspended;
    }
  } else if (outcome.status == RunStatus::kComplete) {
    if (block_servable) {
      job->state = JobState::kDone;
      job->result = servable;
      cache_.put(job->fingerprint, servable);
      ++metrics_.jobs_completed;
    } else {
      job->state = JobState::kFailed;
      job->detail = unservable_detail;
      ++metrics_.jobs_failed;
    }
    metrics_.record_latency_ms(latency_ms);
    metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
    mark_terminal_locked(job);
    if (!config_.spool_dir.empty()) {
      if (job->state == JobState::kDone) {
        try {
          persist_cache_entry(job->fingerprint, *servable);
        } catch (const std::exception&) {
          // Warm-cache persistence is best-effort.
        }
      }
      if (journal_) {
        journal_->append(SpoolJournal::Record::kTerminal, job->fingerprint);
      }
      spool_remove_job(*job);
    }
  } else {
    job->state = JobState::kFailed;
    job->detail = outcome.detail.empty() ? to_string(outcome.status)
                                         : outcome.detail;
    if (block_servable) {
      job->result = servable;  // partial harvest (degraded serving)
    } else {
      job->detail += "; " + unservable_detail;
    }
    ++metrics_.jobs_failed;
    metrics_.record_latency_ms(latency_ms);
    metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
    mark_terminal_locked(job);
    retire_job_locked(*job);
  }
  // Nudge the poll loop so a drain waiting on running_ notices promptly.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Daemon::execute_incremental_job(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->state != JobState::kQueued || draining_) {
      return;
    }
    job->state = JobState::kRunning;
    job->started = std::chrono::steady_clock::now();
    ++running_;
    const auto pos = std::find(queue_.begin(), queue_.end(), job);
    if (pos != queue_.end()) {
      queue_.erase(pos);
    }
  }

  // Check the namespace's maintainer out and collect the canonical
  // deltas between its version and the job's target.  A missing,
  // checked-out, or option-incompatible maintainer means a cold start
  // (full decomposed build at the target version) — always correct,
  // just not incremental.
  std::unique_ptr<stream::IncrementalBc> maintainer;
  std::vector<GraphDeltaOp> pending;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = streams_.find(job->stream_ns);
    if (it != streams_.end()) {
      StreamNamespace& s = it->second;
      if (s.maintainer && s.maintainer_version <= job->stream_version &&
          s.graph->version() >= job->stream_version) {
        const stream::IncrementalBcConfig& c = s.maintainer->config();
        if (c.halve == job->options.halve &&
            c.legacy_engine == job->options.legacy_engine &&
            c.engine == job->options.engine &&
            c.max_rounds == job->options.max_rounds) {
          for (std::uint64_t v = s.maintainer_version + 1;
               v <= job->stream_version; ++v) {
            const std::vector<GraphDeltaOp>& d = s.graph->delta(v);
            pending.insert(pending.end(), d.begin(), d.end());
          }
          maintainer = std::move(s.maintainer);
        }
      }
    }
  }

  stream::IncrementalApplyStats stats;
  std::string detail;
  bool failed = false;
  try {
    if (maintainer) {
      stats = maintainer->apply(job->graph, pending);
      detail = "incremental@v" + std::to_string(job->stream_version) + ": " +
               std::to_string(stats.dirty_sources) + " dirty / " +
               std::to_string(stats.clean_sources) + " clean";
    } else {
      stream::IncrementalBcConfig cfg;
      cfg.halve = job->options.halve;
      cfg.max_rounds = job->options.max_rounds;
      cfg.threads = job->options.threads;
      cfg.engine = job->options.engine;
      cfg.legacy_engine = job->options.legacy_engine;
      maintainer = std::make_unique<stream::IncrementalBc>(job->graph, cfg);
      stats.dirty_sources = maintainer->sources().size();
      detail = "incremental@v" + std::to_string(job->stream_version) +
               ": full build (" + std::to_string(stats.dirty_sources) +
               " sources)";
    }
  } catch (const std::exception& e) {
    failed = true;
    detail = std::string("incremental run failed: ") + e.what();
    maintainer.reset();
  }

  // Encode outside the lock, mirroring execute_job.
  ResultBlock block;
  block.detail = detail;
  if (failed) {
    block.run_status = static_cast<std::uint8_t>(RunStatus::kError);
  } else {
    const stream::MaintainedScores& scores = maintainer->scores();
    block.run_status = static_cast<std::uint8_t>(RunStatus::kComplete);
    block.rounds = scores.rounds;
    block.diameter = scores.diameter;
    block.betweenness = scores.betweenness;
    block.closeness = scores.closeness;
    block.graph_centrality = scores.graph_centrality;
    block.stress = scores.stress;
    block.eccentricities = scores.eccentricities;
  }
  const BitWriter encoded = encode_result_block(block);
  auto servable = std::make_shared<CachedResult>();
  servable->block_bytes = encoded.bytes();
  servable->block_bits = encoded.bit_size();
  servable->run_status = block.run_status;
  const bool block_servable = encoded.bit_size() <= kMaxServableBlockBits;

  std::lock_guard<std::mutex> lock(mutex_);
  if (running_ > 0) {
    --running_;
  }
  const double latency_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - job->submitted)
          .count();
  inflight_.erase(job->fingerprint);
  metrics_.dirty_sources_rerun += stats.dirty_sources;
  if (maintainer) {
    // Check the maintainer back in unless a concurrent job already
    // installed one.
    const auto it = streams_.find(job->stream_ns);
    if (it != streams_.end() && !it->second.maintainer) {
      it->second.maintainer = std::move(maintainer);
      it->second.maintainer_version = job->stream_version;
    }
  }
  if (!failed && block_servable) {
    job->state = JobState::kDone;
    job->detail = detail;
    job->result = servable;
    cache_.put(job->fingerprint, servable);
    ++metrics_.jobs_completed;
    if (!config_.spool_dir.empty()) {
      try {
        persist_cache_entry(job->fingerprint, *servable);
      } catch (const std::exception&) {
        // Warm-cache persistence is best-effort.
      }
    }
  } else {
    job->state = JobState::kFailed;
    job->detail = failed ? detail : "incremental result exceeds the frame cap";
    ++metrics_.jobs_failed;
  }
  metrics_.record_latency_ms(latency_ms);
  metrics_.record_job_rounds(block.rounds, latency_ms);
  mark_terminal_locked(job);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

// ------------------------------------------------------- persistence

std::string Daemon::jobs_dir() const { return config_.spool_dir + "/jobs"; }

std::string Daemon::ckpt_dir(std::uint64_t fingerprint) const {
  return config_.spool_dir + "/ckpt/" + fingerprint_hex(fingerprint);
}

std::string Daemon::cache_dir() const { return config_.spool_dir + "/cache"; }

std::string Daemon::quarantine_dir() const {
  return config_.spool_dir + "/quarantine";
}

void Daemon::quarantine_path(const std::string& path) {
  std::error_code ec;
  const fs::path source(path);
  fs::create_directories(quarantine_dir(), ec);
  fs::path target = fs::path(quarantine_dir()) / source.filename();
  for (int suffix = 1; fs::exists(target, ec); ++suffix) {
    target = fs::path(quarantine_dir()) /
             (source.filename().string() + "." + std::to_string(suffix));
  }
  fs::rename(source, target, ec);
  if (ec) {
    // Same-filesystem rename should not fail; if it somehow does, fall
    // back to removal so the bad file cannot be re-trusted next start.
    fs::remove_all(source, ec);
  }
  ++metrics_.quarantined_files;
}

void Daemon::retire_job_locked(const Job& job) {
  if (config_.spool_dir.empty() || !job.stream_ns.empty()) {
    return;  // incremental maintainer jobs are never spooled
  }
  if (journal_) {
    journal_->append(SpoolJournal::Record::kTerminal, job.fingerprint);
  }
  spool_remove_job(job);
}

void Daemon::spool_write_job(const Job& job) const {
  BitWriter payload;
  payload.write_varuint(kSpoolVersion);
  snap::put_u64(payload, job.fingerprint);
  const BitWriter request = encode_request(make_submit(job.request));
  snap::put_bits(payload, request.data(), request.bit_size());
  write_file_atomic(
      fs::path(jobs_dir()) / ("job-" + fingerprint_hex(job.fingerprint) + ".req"),
      payload);
}

void Daemon::spool_remove_job(const Job& job) const {
  std::error_code ec;
  fs::remove(
      fs::path(jobs_dir()) / ("job-" + fingerprint_hex(job.fingerprint) + ".req"),
      ec);
  fs::remove_all(ckpt_dir(job.fingerprint), ec);
}

void Daemon::persist_cache_entry(std::uint64_t fingerprint,
                                 const CachedResult& result) const {
  BitWriter payload;
  payload.write_varuint(kSpoolVersion);
  snap::put_u64(payload, fingerprint);
  snap::put_u64(payload, result.run_status);
  snap::put_bits(payload, result.block_bytes.data(),
                 static_cast<std::size_t>(result.block_bits));
  write_file_atomic(
      fs::path(cache_dir()) / ("res-" + fingerprint_hex(fingerprint) + ".res"),
      payload);
}

void Daemon::remove_cache_entry(std::uint64_t fingerprint) const {
  std::error_code ec;
  fs::remove(
      fs::path(cache_dir()) / ("res-" + fingerprint_hex(fingerprint) + ".res"),
      ec);
}

// ---------------------------------------------------- streaming plane

std::string Daemon::stream_dir(const std::string& ns) const {
  return config_.spool_dir + "/stream/" + ns;
}

void Daemon::persist_stream_version(const std::string& ns,
                                    const StreamNamespace& state) {
  if (config_.spool_dir.empty()) {
    return;  // memory-only streaming (like every other spool-less path)
  }
  const stream::VersionedGraph& vg = *state.graph;
  try {
    const fs::path dir(stream_dir(ns));
    if (vg.version() == 0) {
      write_text_atomic(dir / "base.txt", write_edge_list_text(vg.head()));
    } else {
      write_text_atomic(
          dir / ("mut-" + std::to_string(vg.version()) + ".txt"),
          format_stream_batch(vg.delta(vg.version())));
    }
    // Journal after the file: the record is the commit marker.
    if (journal_) {
      journal_->append(SpoolJournal::Record::kMutate, vg.fingerprint());
    }
  } catch (const std::exception&) {
    // Best-effort durability, like the job spool: the mutation still
    // applies in memory, it just cannot be replayed across a restart.
  }
}

void Daemon::invalidate_stream_cache_locked(StreamNamespace& state) {
  for (const std::uint64_t fp : state.live_cache_fps) {
    if (cache_.erase(fp)) {
      ++metrics_.cache_invalidations;
      if (!config_.spool_dir.empty()) {
        remove_cache_entry(fp);
      }
    }
  }
  state.live_cache_fps.clear();
}

std::vector<std::uint64_t> Daemon::recover_streams(
    const std::vector<std::uint64_t>& journaled_mutations, bool trust_all) {
  std::vector<std::uint64_t> heads;
  std::error_code ec;
  const fs::path root = fs::path(config_.spool_dir) / "stream";
  if (!fs::exists(root, ec)) {
    return heads;
  }
  const std::unordered_set<std::uint64_t> acked(journaled_mutations.begin(),
                                                journaled_mutations.end());
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  for (const std::string& ns : names) {
    const fs::path dir = root / ns;
    try {
      if (!valid_stream_ns(ns)) {
        throw std::runtime_error("bad namespace directory name");
      }
      const auto load_base = [&dir]() {
        std::ifstream in(dir / "base.txt", std::ios::binary);
        if (!in) {
          throw std::runtime_error("missing base.txt");
        }
        return read_edge_list(in);
      };
      auto vg = std::make_unique<stream::VersionedGraph>(load_base());
      const bool base_acked = trust_all || acked.count(vg->fingerprint()) != 0;
      // Forward replay: find the highest version whose chained
      // fingerprint the journal acknowledged.  Versions past it are torn
      // commits (batch file written, crash before the journal record).
      std::uint64_t accepted = 0;
      std::uint64_t replayed = 0;
      for (std::uint64_t v = 1;; ++v) {
        std::ifstream in(dir / ("mut-" + std::to_string(v) + ".txt"));
        if (!in) {
          break;
        }
        vg->apply(parse_stream_batch(in));
        replayed = v;
        if (trust_all || acked.count(vg->fingerprint()) != 0) {
          accepted = v;
        }
      }
      if (accepted == 0 && !base_acked) {
        throw std::runtime_error("no acknowledged version in the journal");
      }
      for (std::uint64_t v = accepted + 1; v <= replayed; ++v) {
        fs::remove(dir / ("mut-" + std::to_string(v) + ".txt"), ec);
      }
      if (accepted != replayed) {
        // Rebuild without the discarded tail.
        vg = std::make_unique<stream::VersionedGraph>(load_base());
        for (std::uint64_t v = 1; v <= accepted; ++v) {
          std::ifstream in(dir / ("mut-" + std::to_string(v) + ".txt"));
          if (!in) {
            throw std::runtime_error("batch file vanished during recovery");
          }
          vg->apply(parse_stream_batch(in));
        }
      }
      StreamNamespace state;
      state.graph = std::move(vg);
      heads.push_back(state.graph->fingerprint());
      streams_.emplace(ns, std::move(state));
    } catch (const std::exception&) {
      quarantine_path(dir.string());
    }
  }
  return heads;
}

void Daemon::flush_cache_index_locked() const {
  const std::vector<std::uint64_t> keys = cache_.keys_lru_order();
  std::error_code ec;
  fs::create_directories(cache_dir(), ec);
  const fs::path index = fs::path(cache_dir()) / "index.txt";
  const fs::path tmp = fs::path(cache_dir()) / "index.txt.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (const std::uint64_t fp : keys) {
      out << fingerprint_hex(fp) << "\n";
    }
    if (!out) {
      return;  // best-effort
    }
  }
  fs::rename(tmp, index, ec);
  // Prune result files the in-memory LRU evicted, so the restarted cache
  // matches the drained one.
  std::unordered_set<std::string> keep;
  for (const std::uint64_t fp : keys) {
    keep.insert("res-" + fingerprint_hex(fp) + ".res");
  }
  for (const auto& entry : fs::directory_iterator(cache_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("res-", 0) == 0 && keep.find(name) == keep.end()) {
      fs::remove(entry.path(), ec);
    }
  }
}

void Daemon::recover_spool() {
  std::error_code ec;

  // 0. Journal replay: which spooled jobs are live work vs leftovers of
  //    finished work.  A corrupt journal never blocks startup — replay
  //    simply stops at the last intact record, and an unopenable file
  //    just means serving without lifecycle records this run.
  journal_ = std::make_unique<SpoolJournal>(config_.spool_dir + "/journal.log");
  std::unordered_set<std::uint64_t> journal_live;
  std::unordered_set<std::uint64_t> journal_retired;
  std::vector<std::uint64_t> journal_mutations;
  bool journal_ok = false;
  try {
    const SpoolJournal::Recovery recovery = journal_->open_and_recover();
    journal_live.insert(recovery.live.begin(), recovery.live.end());
    journal_retired.insert(recovery.retired.begin(), recovery.retired.end());
    journal_mutations = recovery.mutations;
    journal_ok = true;
  } catch (const std::exception&) {
    journal_.reset();
  }

  // 0b. Stream namespaces replay before the compaction that drops their
  //     mutation records.  Without a journal every intact file is
  //     trusted, mirroring how .req files are trusted below.
  const std::vector<std::uint64_t> stream_heads =
      recover_streams(journal_mutations, !journal_ok);
  if (journal_) {
    // Compact the *job* records to empty, not to the live set: every
    // re-admitted job appends a fresh ADMIT through admit_locked below,
    // and a pre-seeded record would double-count it (net 2, so one
    // TERMINAL later would leave a phantom live entry).  The stream
    // plane keeps exactly one MUTATE record per namespace — its head
    // fingerprint, which transitively authenticates the whole on-disk
    // delta chain.
    journal_->compact({}, stream_heads);
  }

  // 1. Warm cache, least recently used first so put() order restores
  //    recency exactly as flushed.  A missing file is a non-event (index
  //    staleness); a file that fails its CBCSNAP1 hash or decodes wrong
  //    is quarantined — startup must survive arbitrary disk corruption.
  const auto load_res = [this](std::uint64_t fp) -> bool {
    const fs::path path =
        fs::path(cache_dir()) / ("res-" + fingerprint_hex(fp) + ".res");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return false;
    }
    try {
      const SnapshotPayload payload = read_snapshot_container(in);
      BitReader r = payload.reader();
      if (r.read_varuint() != kSpoolVersion) {
        throw SnapshotError("spool version mismatch");
      }
      if (snap::get_u64(r) != fp) {
        throw SnapshotError("fingerprint mismatch");
      }
      const std::uint64_t status = snap::get_u64(r);
      auto result = std::make_shared<CachedResult>();
      result->block_bits = snap::get_bits(r, result->block_bytes);
      result->run_status = static_cast<std::uint8_t>(status);
      cache_.put(fp, std::move(result));
      return true;
    } catch (const std::exception&) {
      quarantine_path(path.string());
      return false;
    }
  };

  std::unordered_set<std::uint64_t> loaded;
  {
    std::ifstream index(fs::path(cache_dir()) / "index.txt");
    std::string line;
    while (std::getline(index, line)) {
      if (line.empty()) {
        continue;
      }
      const std::uint64_t fp = std::strtoull(line.c_str(), nullptr, 16);
      if (load_res(fp)) {
        loaded.insert(fp);
      }
    }
  }
  // Entries persisted after the last index flush (crash, not drain) —
  // recency is approximate for these, correctness is not affected.
  for (const auto& entry : fs::directory_iterator(cache_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("res-", 0) != 0 || name.size() != 4 + 16 + 4) {
      continue;
    }
    const std::uint64_t fp = std::strtoull(name.substr(4, 16).c_str(), nullptr, 16);
    if (loaded.find(fp) == loaded.end()) {
      load_res(fp);
    }
  }

  // 2. Interrupted jobs: re-admit each spooled request, resuming from its
  //    newest *valid* checkpoint.  The journal separates live work from
  //    the leftovers of finished work (a kill -9 between the TERMINAL
  //    record and the unlink leaves a stale .req that must never re-run);
  //    anything unreadable or inconsistent is quarantined, not trusted.
  ec.clear();
  for (const auto& entry : fs::directory_iterator(jobs_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("job-", 0) != 0 || name.size() < 4 + 16 + 4) {
      continue;
    }
    try {
      std::ifstream in(entry.path(), std::ios::binary);
      const SnapshotPayload container = read_snapshot_container(in);
      BitReader r = container.reader();
      if (r.read_varuint() != kSpoolVersion) {
        quarantine_path(entry.path().string());
        continue;
      }
      const std::uint64_t fp = snap::get_u64(r);
      if (journal_retired.count(fp) != 0 && journal_live.count(fp) == 0) {
        // The journal says this job already finished; the crash landed in
        // the window between its TERMINAL record and the unlink.  Remove,
        // never re-run — re-running would duplicate completed work.
        fs::remove(entry.path(), ec);
        fs::remove_all(ckpt_dir(fp), ec);
        continue;
      }
      FramePayload request_payload;
      request_payload.bits = snap::get_bits(r, request_payload.bytes);
      const Request request = decode_request(request_payload);
      if (request.type != MsgType::kSubmit) {
        quarantine_path(entry.path().string());
        continue;
      }
      Graph graph(0, {});
      std::optional<Digraph> digraph;
      DistributedBcOptions options;
      SubmitRequest canonical;
      parse_submit(request.submit, graph, digraph, options, canonical);
      const std::uint64_t recomputed = digraph.has_value()
                                           ? run_fingerprint(*digraph, options)
                                           : run_fingerprint(graph, options);
      if (recomputed != fp) {
        quarantine_path(entry.path().string());  // stale or corrupted entry
        continue;
      }
      if (cache_.peek(fp) != nullptr) {
        // Finished before the previous daemon exited; nothing to resume.
        fs::remove(entry.path(), ec);
        fs::remove_all(ckpt_dir(fp), ec);
        continue;
      }
      auto job = std::make_shared<Job>();
      job->fingerprint = fp;
      job->request = std::move(canonical);
      job->graph = std::move(graph);
      job->digraph = std::move(digraph);
      job->options = std::move(options);
      job->submitted = std::chrono::steady_clock::now();
      // Newest checkpoint that actually decodes; corrupt ones (torn
      // writes, bit rot) are quarantined and the scan falls back to the
      // next-oldest — worst case the job restarts from round zero.
      const std::vector<std::string> checkpoints =
          list_checkpoints(ckpt_dir(fp));
      for (auto ck = checkpoints.rbegin(); ck != checkpoints.rend(); ++ck) {
        bool valid = false;
        std::ifstream ckin(*ck, std::ios::binary);
        if (ckin) {
          try {
            (void)read_snapshot_container(ckin);
            valid = true;
          } catch (const std::exception&) {
          }
        }
        if (valid) {
          job->resume_from = *ck;
          break;
        }
        quarantine_path(*ck);
      }
      std::lock_guard<std::mutex> lock(mutex_);
      job->id = next_job_id_++;
      ++metrics_.jobs_resumed;
      admit_locked(job);
    } catch (const std::exception&) {
      quarantine_path(entry.path().string());  // unreadable spool entry
    }
  }
}

void Daemon::dump_metrics() {
  try {
    const std::string json = to_json(stats());
    const fs::path target(config_.metrics_path);
    const fs::path tmp = config_.metrics_path + ".tmp";
    if (target.has_parent_path()) {
      fs::create_directories(target.parent_path());
    }
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << json << "\n";
      if (!out) {
        return;
      }
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);
  } catch (const std::exception&) {
    // Metrics are best-effort observability; never take the daemon down.
  }
}

}  // namespace congestbc::service
