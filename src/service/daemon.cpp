#include "service/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "congest/fault.hpp"
#include "core/runner.hpp"
#include "obs/phase_profile.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc::service {

namespace fs = std::filesystem;

namespace {

/// Version of the spool file payloads (job-*.req, res-*.res).
constexpr std::uint64_t kSpoolVersion = 1;

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return std::string(buf);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// The servable block of an outcome — complete or partial harvest alike.
ResultBlock outcome_to_block(const RunOutcome& outcome) {
  ResultBlock block;
  block.run_status = static_cast<std::uint8_t>(outcome.status);
  block.detail = outcome.detail;
  block.rounds = outcome.result.rounds;
  block.diameter = outcome.result.diameter;
  block.total_bits = outcome.result.metrics.total_bits;
  block.total_physical_messages = outcome.result.metrics.total_physical_messages;
  block.betweenness = outcome.result.betweenness;
  block.closeness = outcome.result.closeness;
  block.graph_centrality = outcome.result.graph_centrality;
  block.stress = outcome.result.stress;
  block.eccentricities = outcome.result.eccentricities;
  return block;
}

/// Atomic small-file write (temp + rename), matching the checkpoint
/// subsystem's crash-safety discipline.
void write_file_atomic(const fs::path& target, const BitWriter& payload) {
  fs::create_directories(target.parent_path());
  const fs::path tmp = target.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    write_snapshot_container(out, payload);
    if (!out) {
      throw SnapshotError("cannot write " + tmp.string());
    }
  }
  fs::rename(tmp, target);
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)), cache_(config_.cache_capacity) {}

Daemon::~Daemon() {
  request_drain();
  wait();
  if (pool_) {
    pool_->stop();
  }
  for (auto& session : sessions_) {
    close_fd(session->fd);
  }
  sessions_.clear();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void Daemon::start() {
  if (started_) {
    return;
  }
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("pipe() failed: " + std::string(std::strerror(errno)));
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  pool_ = std::make_unique<WorkerPool>(config_.workers);
  if (!config_.spool_dir.empty()) {
    fs::create_directories(config_.spool_dir);
    recover_spool();
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("socket() failed: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    throw std::runtime_error("bind() failed: " + std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    throw std::runtime_error("listen() failed: " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
  last_metrics_dump_ = std::chrono::steady_clock::now();
  started_ = true;
}

void Daemon::serve_async() {
  serve_thread_ = std::thread([this] { serve(); });
}

void Daemon::wait() {
  if (serve_thread_.joinable()) {
    serve_thread_.join();
  }
}

void Daemon::request_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Daemon::notify_signal() {
  // Async-signal-safe by construction: a lock-free atomic store and one
  // write(2) on a nonblocking pipe — no locks, no allocation, no stdio.
  drain_requested_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

StatsReply Daemon::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_locked();
}

StatsReply Daemon::stats_locked() {
  double utilization = 0.0;
  const double uptime_ns = static_cast<double>(metrics_.uptime_ms()) * 1e6;
  if (pool_ && uptime_ns > 0.0) {
    utilization = static_cast<double>(pool_->busy_nanos()) /
                  (uptime_ns * static_cast<double>(pool_->threads()));
    utilization = std::clamp(utilization, 0.0, 1.0);
  }
  return metrics_.snapshot(queue_.size(), running_,
                           pool_ ? pool_->threads() : 0, cache_.size(),
                           cache_.hits(), cache_.misses(), cache_.evictions(),
                           utilization);
}

// --------------------------------------------------------- poll loop

void Daemon::serve() {
  std::vector<pollfd> fds;
  while (true) {
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    int listen_idx = -1;
    if (!draining_ && listen_fd_ >= 0) {
      listen_idx = static_cast<int>(fds.size());
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    }
    const std::size_t base = fds.size();
    for (const auto& session : sessions_) {
      short events = 0;
      // Backpressure: a session sitting on too much un-flushed reply data
      // stops being read (and TCP pushes back on the peer) until the
      // backlog drains.
      if (!session->close_after_flush &&
          session->pending_out() <= config_.session_out_limit) {
        events |= POLLIN;
      }
      if (session->out_pos < session->out.size()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{session->fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc < 0 && errno != EINTR) {
      break;  // unrecoverable poll failure; fall through to drain
    }

    if (fds[0].revents & POLLIN) {
      std::uint8_t buf[64];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      std::lock_guard<std::mutex> lock(mutex_);
      begin_drain_locked();
    }
    if (!draining_ && listen_idx >= 0 &&
        (fds[static_cast<std::size_t>(listen_idx)].revents & POLLIN)) {
      accept_clients();
    }
    for (std::size_t i = 0; i < sessions_.size() && base + i < fds.size(); ++i) {
      Session& session = *sessions_[i];
      const short revents = fds[base + i].revents;
      if (revents & (POLLIN | POLLERR | POLLHUP)) {
        handle_session_input(session);
      }
      // Run the dispatch loop every tick, not just on input: frames held
      // back by output backpressure resume once the backlog drains.
      if (!session.dead && !session.close_after_flush) {
        process_session_frames(session);
      }
      if (!session.dead && session.out_pos < session.out.size()) {
        flush_session_output(session);
      }
    }
    sessions_.erase(
        std::remove_if(sessions_.begin(), sessions_.end(),
                       [](const std::unique_ptr<Session>& s) {
                         if (s->dead) {
                           int fd = s->fd;
                           close_fd(fd);
                           return true;
                         }
                         return false;
                       }),
        sessions_.end());

    poll_tick_housekeeping();

    if (draining_) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (drain_complete_locked()) {
        break;
      }
    }
  }
  finish_drain();
}

void Daemon::accept_clients() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN/EWOULDBLOCK or transient accept failure
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sessions_.push_back(std::make_unique<Session>(fd, config_.max_frame_bytes));
  }
}

void Daemon::handle_session_input(Session& session) {
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::recv(session.fd, buf, sizeof buf, 0);
    if (n > 0) {
      feed_session_bytes(session, buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) {
        break;
      }
      continue;
    }
    if (n == 0) {
      session.dead = true;  // peer closed; nothing more to serve
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    session.dead = true;
    return;
  }
}

// Hard cap on a buffered HTTP request: /metrics needs one short line,
// so anything larger is hostile.
constexpr std::size_t kMaxHttpRequestBytes = 8192;

void Daemon::feed_session_bytes(Session& session, const std::uint8_t* data,
                                std::size_t n) {
  if (session.mode == Session::Mode::kFrames) {
    session.decoder.feed(data, n);
    return;
  }
  session.sniff.insert(session.sniff.end(), data, data + n);
  if (session.mode == Session::Mode::kUnknown) {
    if (session.sniff.size() < 4) {
      return;  // not enough bytes to tell HTTP from CBCP yet
    }
    if (std::memcmp(session.sniff.data(), "GET ", 4) == 0) {
      session.mode = Session::Mode::kHttp;
    } else {
      session.mode = Session::Mode::kFrames;
      session.decoder.feed(session.sniff.data(), session.sniff.size());
      session.sniff.clear();
      session.sniff.shrink_to_fit();
      return;
    }
  }
  if (session.sniff.size() > kMaxHttpRequestBytes) {
    session.dead = true;
  }
}

void Daemon::process_http_request(Session& session) {
  static constexpr char kTerminator[] = "\r\n\r\n";
  const auto end = std::search(session.sniff.begin(), session.sniff.end(),
                               kTerminator, kTerminator + 4);
  if (end == session.sniff.end()) {
    return;  // headers still arriving
  }
  // Request line: "GET <path> HTTP/1.x".
  std::string line(session.sniff.begin(),
                   std::find(session.sniff.begin(), session.sniff.end(), '\r'));
  std::string path;
  const std::size_t sp1 = line.find(' ');
  if (sp1 != std::string::npos) {
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    path = line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                         : sp2 - sp1 - 1);
  }
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (path == "/metrics") {
    std::lock_guard<std::mutex> lock(mutex_);
    body = prometheus_text(stats_locked(), metrics_.latency_ms_hist,
                           metrics_.job_rounds_hist,
                           metrics_.round_throughput_hist);
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found; try /metrics\n";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  session.out.insert(session.out.end(), response.begin(), response.end());
  session.sniff.clear();
  session.close_after_flush = true;  // one request per connection
}

// Deframe + dispatch.  Any protocol violation gets one typed ERROR
// frame, then the connection is closed after the flush — a hostile or
// corrupted stream cannot be resynchronized safely.  The loop pauses
// while the session's un-flushed output exceeds its backpressure limit;
// buffered frames stay in the decoder until the backlog drains.
void Daemon::process_session_frames(Session& session) {
  if (session.mode == Session::Mode::kHttp) {
    process_http_request(session);
    return;
  }
  try {
    while (session.pending_out() <= config_.session_out_limit) {
      auto frame = session.decoder.next();
      if (!frame) {
        break;
      }
      const Request request = decode_request(*frame);
      append_reply(session, dispatch(request));
    }
  } catch (const ProtocolError& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++metrics_.protocol_errors;
    }
    Reply reply;
    reply.type = MsgType::kError;
    reply.error.code = e.code();
    reply.error.message = e.what();
    append_reply(session, reply);
    session.close_after_flush = true;
  } catch (const std::exception& e) {
    // Never-crash backstop: anything that escapes the typed path (an
    // allocation failure on a hostile size, an invariant trip) costs the
    // offending session its connection, not the daemon its life.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++metrics_.protocol_errors;
    }
    Reply reply;
    reply.type = MsgType::kError;
    reply.error.code = ProtoError::kBadRequest;
    reply.error.message = std::string("internal error: ") + e.what();
    append_reply(session, reply);
    session.close_after_flush = true;
  }
}

void Daemon::append_reply(Session& session, const Reply& reply) {
  const std::vector<std::uint8_t> bytes = frame_bytes(encode_reply(reply));
  session.out.insert(session.out.end(), bytes.begin(), bytes.end());
}

void Daemon::flush_session_output(Session& session) {
  while (session.out_pos < session.out.size()) {
    const ssize_t n =
        ::send(session.fd, session.out.data() + session.out_pos,
               session.out.size() - session.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      session.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    session.dead = true;
    return;
  }
  session.out.clear();
  session.out_pos = 0;
  if (session.close_after_flush) {
    session.dead = true;
  }
}

void Daemon::poll_tick_housekeeping() {
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (config_.job_time_budget_ms != 0) {
      // Only queued/running jobs live in the coalescing map, so this scan
      // is bounded by queue_limit + workers, not by the job table.
      for (auto& [fp, job] : inflight_) {
        if (job->state != JobState::kRunning || job->budget_exceeded) {
          continue;
        }
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                  job->started)
                .count();
        if (elapsed >= 0 &&
            static_cast<std::uint64_t>(elapsed) > config_.job_time_budget_ms) {
          job->budget_exceeded = true;
          job->halt.store(true, std::memory_order_relaxed);
        }
      }
    }
    // Client deadlines: a queued job whose submitter's budget ran out
    // fails on the spot (it will never be collected); a running one is
    // asked to halt at its next round boundary and fails in
    // execute_job's completion path.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      const std::shared_ptr<Job> job = it->second;
      if (job->deadline == std::chrono::steady_clock::time_point::max() ||
          now < job->deadline) {
        ++it;
        continue;
      }
      if (job->state == JobState::kQueued) {
        job->state = JobState::kFailed;
        job->detail = "client deadline expired before the job started";
        const auto pos = std::find(queue_.begin(), queue_.end(), job);
        if (pos != queue_.end()) {
          queue_.erase(pos);
        }
        ++metrics_.jobs_failed;
        ++metrics_.deadline_expired;
        mark_terminal_locked(job);
        retire_job_locked(*job);
        it = inflight_.erase(it);
        continue;
      }
      if (job->state == JobState::kRunning && !job->deadline_exceeded) {
        job->deadline_exceeded = true;
        job->halt.store(true, std::memory_order_relaxed);
      }
      ++it;
    }
    gc_jobs_locked(now);
  }
  if (!config_.metrics_path.empty() && config_.metrics_every_ms != 0) {
    const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - last_metrics_dump_)
                           .count();
    if (since >= 0 &&
        static_cast<std::uint64_t>(since) >= config_.metrics_every_ms) {
      dump_metrics();
      last_metrics_dump_ = now;
    }
  }
}

// ------------------------------------------------------------- drain

void Daemon::begin_drain_locked() {
  if (draining_) {
    return;
  }
  draining_ = true;
  drain_requested_.store(true, std::memory_order_relaxed);
  close_fd(listen_fd_);
  // Queued-but-unstarted jobs: suspend on the spot.  Their spool entries
  // (written at admission) are what a restarted daemon re-enqueues.
  for (const auto& job : queue_) {
    job->state = JobState::kSuspended;
    job->detail = config_.spool_dir.empty()
                      ? "daemon drained before the job started (no spool "
                        "directory; resubmit after restart)"
                      : "daemon drained before the job started; spooled for "
                        "restart";
    ++metrics_.jobs_suspended;
    inflight_.erase(job->fingerprint);
  }
  queue_.clear();
  // Running jobs: cooperative halt — each suspends at its next round
  // boundary, writing the suspension checkpoint when a spool is set.
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning) {
      job->halt.store(true, std::memory_order_relaxed);
    }
  }
}

bool Daemon::drain_complete_locked() const { return running_ == 0; }

void Daemon::finish_drain() {
  if (pool_) {
    pool_->stop();
  }
  if (!config_.spool_dir.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    flush_cache_index_locked();
  }
  if (!config_.metrics_path.empty()) {
    dump_metrics();
  }
  // Best-effort flush of replies already queued (e.g. the SHUTDOWN ack),
  // bounded so a stuck client cannot wedge the exit.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  bool pending = true;
  while (pending && std::chrono::steady_clock::now() < deadline) {
    pending = false;
    for (auto& session : sessions_) {
      if (!session->dead && session->out_pos < session->out.size()) {
        flush_session_output(*session);
        pending |= !session->dead && session->out_pos < session->out.size();
      }
    }
    if (pending) {
      ::poll(nullptr, 0, 10);
    }
  }
  for (auto& session : sessions_) {
    close_fd(session->fd);
  }
  sessions_.clear();
}

// -------------------------------------------------- request handling

Reply Daemon::dispatch(const Request& request) {
  Reply reply;
  switch (request.type) {
    case MsgType::kSubmit:
      reply.type = MsgType::kSubmitReply;
      reply.submit = handle_submit(request.submit);
      break;
    case MsgType::kStatus:
      reply.type = MsgType::kStatusReply;
      reply.status = handle_status(request.job.job_id);
      break;
    case MsgType::kResult:
      reply.type = MsgType::kResultReply;
      reply.result = handle_result(request.job.job_id);
      break;
    case MsgType::kCancel:
      reply.type = MsgType::kCancelReply;
      reply.cancel = handle_cancel(request.job.job_id);
      break;
    case MsgType::kStats:
      reply.type = MsgType::kStatsReply;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        reply.stats = stats_locked();
      }
      break;
    case MsgType::kShutdown:
      reply.type = MsgType::kShutdownReply;
      reply.shutdown = handle_shutdown();
      break;
    default:
      throw ProtocolError(ProtoError::kUnknownType, "unhandled request type");
  }
  return reply;
}

void Daemon::parse_submit(const SubmitRequest& request, Graph& graph,
                          DistributedBcOptions& options,
                          SubmitRequest& canonical) const {
  std::string text;
  if (request.source == GraphSource::kPath) {
    if (config_.graph_root.empty()) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "path submits disabled (daemon has no --graph-root)");
    }
    std::error_code ec;
    const fs::path root = fs::weakly_canonical(config_.graph_root, ec);
    const fs::path resolved =
        fs::weakly_canonical(fs::path(config_.graph_root) / request.graph, ec);
    const std::string root_prefix = root.string() + "/";
    if (ec || (resolved.string() != root.string() &&
               resolved.string().rfind(root_prefix, 0) != 0)) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "graph path escapes --graph-root");
    }
    std::ifstream in(resolved, std::ios::binary);
    if (!in) {
      throw ProtocolError(ProtoError::kBadRequest,
                          "cannot open graph file: " + resolved.string());
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    text = request.graph;
  }
  try {
    graph = read_edge_list_text(text);
  } catch (const std::exception& e) {
    throw ProtocolError(ProtoError::kBadRequest,
                        std::string("bad graph: ") + e.what());
  }
  if (graph.num_nodes() == 0) {
    throw ProtocolError(ProtoError::kBadRequest, "empty graph");
  }
  if (!is_connected(graph)) {
    throw ProtocolError(ProtoError::kBadRequest,
                        "graph is not connected (model precondition)");
  }
  FaultPlan plan;
  if (!request.faults.empty()) {
    try {
      plan = FaultPlan::parse(request.faults);
    } catch (const std::exception& e) {
      throw ProtocolError(ProtoError::kBadRequest,
                          std::string("bad fault spec: ") + e.what());
    }
  }
  options = DistributedBcOptions{};
  options.halve = request.halve;
  options.reliable_transport = request.reliable;
  options.faults = std::move(plan);
  options.max_rounds = request.max_rounds == 0
                           ? config_.max_rounds_cap
                           : std::min(request.max_rounds, config_.max_rounds_cap);
  options.threads = request.threads == 0 ? config_.default_threads
                                         : static_cast<unsigned>(request.threads);
  options.legacy_engine = request.legacy_engine;

  // Canonical form: always inline, graph re-serialized, budgets resolved —
  // so the spool is self-contained and a resubmit of either form
  // fingerprints identically.
  canonical = request;
  canonical.source = GraphSource::kInline;
  canonical.graph = write_edge_list_text(graph);
  canonical.max_rounds = options.max_rounds;
  // Retry metadata never reaches the spool or the fingerprint: attempt 3
  // of a submit must coalesce with attempt 1.
  canonical.deadline_ms = 0;
  canonical.attempt = 1;
}

SubmitReply Daemon::handle_submit(const SubmitRequest& request) {
  Graph graph(0, {});
  DistributedBcOptions options;
  SubmitRequest canonical;
  std::string reject_detail;
  bool parsed = false;
  try {
    parse_submit(request, graph, options, canonical);
    parsed = true;
  } catch (const std::exception& e) {
    reject_detail = e.what();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ++metrics_.submits;
  if (request.attempt > 1) {
    ++metrics_.retried_submits;
  }
  SubmitReply reply;
  if (!parsed) {
    reply.disposition = SubmitDisposition::kRejected;
    reply.detail = reject_detail;
    return reply;
  }
  const std::uint64_t fp = run_fingerprint(graph, options);
  reply.fingerprint = fp;
  if (draining_) {
    ++metrics_.draining_rejections;
    reply.disposition = SubmitDisposition::kDraining;
    reply.detail = "daemon is draining";
    return reply;
  }
  if (auto cached = cache_.get(fp)) {
    auto job = std::make_shared<Job>();
    job->id = next_job_id_++;
    job->fingerprint = fp;
    job->state = JobState::kDone;
    job->result = std::move(cached);
    job->from_cache = true;
    job->submitted = std::chrono::steady_clock::now();
    jobs_.emplace(job->id, job);
    mark_terminal_locked(job);
    reply.disposition = SubmitDisposition::kCacheHit;
    reply.job_id = job->id;
    return reply;
  }
  if (const auto it = inflight_.find(fp); it != inflight_.end()) {
    ++metrics_.coalesced;
    // The coalesced job serves every submitter, so it lives until the
    // *latest* deadline among them — and forever if any submitter had
    // none (time_point::max() means "no deadline").
    if (request.deadline_ms == 0) {
      it->second->deadline = std::chrono::steady_clock::time_point::max();
    } else if (it->second->deadline !=
               std::chrono::steady_clock::time_point::max()) {
      it->second->deadline =
          std::max(it->second->deadline,
                   std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(request.deadline_ms));
    }
    reply.disposition = SubmitDisposition::kCoalesced;
    reply.job_id = it->second->id;
    return reply;
  }
  if (queue_.size() >= config_.queue_limit) {
    ++metrics_.busy_rejections;
    reply.disposition = SubmitDisposition::kBusy;
    reply.detail = "queue full (" + std::to_string(queue_.size()) + " queued)";
    return reply;
  }
  if (request.deadline_ms != 0) {
    // Deadline-aware admission: when the client's remaining budget cannot
    // plausibly cover queue wait + run (estimated from the p50 of recent
    // jobs), reject now so the client retries elsewhere or gives up —
    // instead of burning a worker on a result nobody will wait for.
    // With no latency history yet the estimate is zero and every deadline
    // is accepted.
    const double p50 = metrics_.latency_percentile(50.0);
    const double estimated_ms =
        p50 * static_cast<double>(queue_.size() + 1);
    if (estimated_ms > static_cast<double>(request.deadline_ms)) {
      ++metrics_.deadline_rejections;
      reply.disposition = SubmitDisposition::kDeadline;
      reply.detail = "deadline " + std::to_string(request.deadline_ms) +
                     " ms < estimated " +
                     std::to_string(static_cast<std::uint64_t>(estimated_ms)) +
                     " ms (p50 latency x queue depth)";
      return reply;
    }
  }
  auto job = std::make_shared<Job>();
  job->id = next_job_id_++;
  job->fingerprint = fp;
  job->request = std::move(canonical);
  job->graph = std::move(graph);
  job->options = std::move(options);
  job->submitted = std::chrono::steady_clock::now();
  if (request.deadline_ms != 0) {
    job->deadline =
        job->submitted + std::chrono::milliseconds(request.deadline_ms);
  }
  admit_locked(job);
  reply.disposition = SubmitDisposition::kQueued;
  reply.job_id = job->id;
  return reply;
}

void Daemon::mark_terminal_locked(const std::shared_ptr<Job>& job) {
  job->terminal_at = std::chrono::steady_clock::now();
  terminal_order_.push_back(job->id);
}

void Daemon::gc_jobs_locked(std::chrono::steady_clock::time_point now) {
  // terminal_order_ is completion-ordered, so the front is always the
  // next eviction candidate; one pass never revisits survivors.
  while (!terminal_order_.empty()) {
    const auto it = jobs_.find(terminal_order_.front());
    if (it == jobs_.end()) {
      terminal_order_.pop_front();
      continue;
    }
    const bool over_cap = terminal_order_.size() > config_.job_retention_limit;
    bool expired = false;
    if (config_.job_retention_ms != 0) {
      const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - it->second->terminal_at)
                           .count();
      expired = age >= 0 &&
                static_cast<std::uint64_t>(age) >= config_.job_retention_ms;
    }
    if (!over_cap && !expired) {
      break;
    }
    jobs_.erase(it);
    terminal_order_.pop_front();
  }
}

void Daemon::admit_locked(const std::shared_ptr<Job>& job) {
  jobs_.emplace(job->id, job);
  inflight_.emplace(job->fingerprint, job);
  queue_.push_back(job);
  if (!config_.spool_dir.empty()) {
    try {
      spool_write_job(*job);
      // ADMIT lands only after the .req does: a journal entry without a
      // matching spool file would resurrect a job with no request body.
      if (journal_) {
        journal_->append(SpoolJournal::Record::kAdmit, job->fingerprint);
      }
    } catch (const std::exception&) {
      // Persistence is best-effort: the job still runs, it just cannot be
      // resumed across a restart.
    }
  }
  pool_->submit([this, job] { execute_job(job); });
}

StatusReply Daemon::handle_status(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  StatusReply reply;
  reply.job_id = job_id;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    reply.state = JobState::kUnknown;
    reply.detail = "no such job";
    return reply;
  }
  const Job& job = *it->second;
  reply.state = job.state;
  reply.fingerprint = job.fingerprint;
  reply.detail = job.detail;
  reply.phase_timeline = job.phase_timeline;
  if (job.state == JobState::kQueued) {
    const auto pos = std::find(queue_.begin(), queue_.end(), it->second);
    reply.queue_position =
        static_cast<std::uint32_t>(std::distance(queue_.begin(), pos));
  }
  return reply;
}

ResultReply Daemon::handle_result(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ResultReply reply;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    reply.state = JobState::kUnknown;
    reply.detail = "no such job";
    return reply;
  }
  const Job& job = *it->second;
  reply.state = job.state;
  reply.fingerprint = job.fingerprint;
  reply.detail = job.detail;
  reply.from_cache = job.from_cache;
  if ((job.state == JobState::kDone || job.state == JobState::kFailed) &&
      job.result != nullptr) {
    reply.ready = true;
    reply.block_bytes = job.result->block_bytes;
    reply.block_bits = job.result->block_bits;
  }
  return reply;
}

CancelReply Daemon::handle_cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  CancelReply reply;
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    reply.outcome = CancelOutcome::kNotFound;
    return reply;
  }
  const std::shared_ptr<Job>& job = it->second;
  switch (job->state) {
    case JobState::kQueued: {
      job->state = JobState::kCancelled;
      job->detail = "cancelled before start";
      const auto pos = std::find(queue_.begin(), queue_.end(), job);
      if (pos != queue_.end()) {
        queue_.erase(pos);
      }
      inflight_.erase(job->fingerprint);
      ++metrics_.jobs_cancelled;
      mark_terminal_locked(job);
      retire_job_locked(*job);
      reply.outcome = CancelOutcome::kCancelled;
      break;
    }
    case JobState::kRunning:
      // Cooperative and best-effort: the run usually suspends at its next
      // round boundary and the completion path discards it — but a run
      // that finishes before observing the halt still lands kDone.  The
      // reply says "requested", not "cancelled", for exactly that reason.
      job->cancel_requested = true;
      job->halt.store(true, std::memory_order_relaxed);
      reply.outcome = CancelOutcome::kRequested;
      break;
    default:
      reply.outcome = CancelOutcome::kTooLate;
      break;
  }
  return reply;
}

ShutdownReply Daemon::handle_shutdown() {
  request_drain();
  ShutdownReply reply;
  reply.draining = true;
  return reply;
}

// --------------------------------------------------------- execution

void Daemon::execute_job(const std::shared_ptr<Job>& job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job->state != JobState::kQueued || draining_) {
      return;  // cancelled or suspended while waiting its turn
    }
    job->state = JobState::kRunning;
    job->started = std::chrono::steady_clock::now();
    ++running_;
    const auto pos = std::find(queue_.begin(), queue_.end(), job);
    if (pos != queue_.end()) {
      queue_.erase(pos);
    }
  }

  DistributedBcOptions options = job->options;
  options.halt_request = &job->halt;
  if (!config_.spool_dir.empty()) {
    options.checkpoint_dir = ckpt_dir(job->fingerprint);
    options.checkpoint_every = config_.checkpoint_every;
    options.checkpoint_keep_last = config_.checkpoint_keep;
    options.resume_from = job->resume_from;
  }

  RunOutcome outcome;
  try {
    outcome = run_bc_with_watchdog(job->graph, options);
  } catch (const std::exception& e) {
    outcome = RunOutcome{};
    outcome.status = RunStatus::kError;
    outcome.detail = e.what();
  }

  // Encode outside the lock — blocks can be large.
  const ResultBlock block = outcome_to_block(outcome);
  const BitWriter encoded = encode_result_block(block);
  auto servable = std::make_shared<CachedResult>();
  servable->block_bytes = encoded.bytes();
  servable->block_bits = encoded.bit_size();
  servable->run_status = block.run_status;
  // A block too large for one RESULT frame must fail here, with a typed
  // detail, rather than trip frame_bytes' invariant on the reply path.
  const bool block_servable = encoded.bit_size() <= kMaxServableBlockBits;
  const std::string unservable_detail =
      "result block (" + std::to_string((encoded.bit_size() + 7) / 8) +
      " bytes) exceeds the " + std::to_string(kMaxFramePayloadBytes >> 20) +
      " MiB frame cap; graph too large to serve over protocol v" +
      std::to_string(kProtocolVersion);

  std::lock_guard<std::mutex> lock(mutex_);
  if (running_ > 0) {
    --running_;
  }
  const double latency_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - job->submitted)
          .count();
  inflight_.erase(job->fingerprint);
  // Partial runs carry a (truncated) profile too — useful for debugging
  // a cancelled or over-budget job.
  job->phase_timeline =
      obs::format_phase_timeline(outcome.result.phase_profile);

  if (outcome.status == RunStatus::kSuspended) {
    if (job->cancel_requested) {
      job->state = JobState::kCancelled;
      job->detail = "cancelled while running";
      ++metrics_.jobs_cancelled;
      mark_terminal_locked(job);
      retire_job_locked(*job);
    } else if (job->budget_exceeded) {
      job->state = JobState::kFailed;
      job->detail = "wall-clock budget exceeded (" +
                    std::to_string(config_.job_time_budget_ms) + " ms)";
      if (block_servable) {
        job->result = servable;  // partial harvest, served but never cached
      } else {
        job->detail += "; " + unservable_detail;
      }
      ++metrics_.jobs_failed;
      metrics_.record_latency_ms(latency_ms);
      metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
      mark_terminal_locked(job);
      retire_job_locked(*job);
    } else if (job->deadline_exceeded) {
      job->state = JobState::kFailed;
      job->detail = "client deadline expired while the job ran";
      if (block_servable) {
        job->result = servable;  // partial harvest, served but never cached
      } else {
        job->detail += "; " + unservable_detail;
      }
      ++metrics_.jobs_failed;
      ++metrics_.deadline_expired;
      metrics_.record_latency_ms(latency_ms);
      metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
      mark_terminal_locked(job);
      retire_job_locked(*job);
    } else {
      // Drain suspension: the run just wrote its boundary checkpoint (when
      // a spool is configured); the spool entry stays for the restart.
      job->state = JobState::kSuspended;
      job->detail = config_.spool_dir.empty()
                        ? "suspended by drain (no spool directory; resubmit "
                          "after restart)"
                        : "suspended by drain; checkpointed for restart";
      ++metrics_.jobs_suspended;
    }
  } else if (outcome.status == RunStatus::kComplete) {
    if (block_servable) {
      job->state = JobState::kDone;
      job->result = servable;
      cache_.put(job->fingerprint, servable);
      ++metrics_.jobs_completed;
    } else {
      job->state = JobState::kFailed;
      job->detail = unservable_detail;
      ++metrics_.jobs_failed;
    }
    metrics_.record_latency_ms(latency_ms);
    metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
    mark_terminal_locked(job);
    if (!config_.spool_dir.empty()) {
      if (job->state == JobState::kDone) {
        try {
          persist_cache_entry(job->fingerprint, *servable);
        } catch (const std::exception&) {
          // Warm-cache persistence is best-effort.
        }
      }
      if (journal_) {
        journal_->append(SpoolJournal::Record::kTerminal, job->fingerprint);
      }
      spool_remove_job(*job);
    }
  } else {
    job->state = JobState::kFailed;
    job->detail = outcome.detail.empty() ? to_string(outcome.status)
                                         : outcome.detail;
    if (block_servable) {
      job->result = servable;  // partial harvest (degraded serving)
    } else {
      job->detail += "; " + unservable_detail;
    }
    ++metrics_.jobs_failed;
    metrics_.record_latency_ms(latency_ms);
    metrics_.record_job_rounds(outcome.result.rounds, latency_ms);
    mark_terminal_locked(job);
    retire_job_locked(*job);
  }
  // Nudge the poll loop so a drain waiting on running_ notices promptly.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

// ------------------------------------------------------- persistence

std::string Daemon::jobs_dir() const { return config_.spool_dir + "/jobs"; }

std::string Daemon::ckpt_dir(std::uint64_t fingerprint) const {
  return config_.spool_dir + "/ckpt/" + fingerprint_hex(fingerprint);
}

std::string Daemon::cache_dir() const { return config_.spool_dir + "/cache"; }

std::string Daemon::quarantine_dir() const {
  return config_.spool_dir + "/quarantine";
}

void Daemon::quarantine_path(const std::string& path) {
  std::error_code ec;
  const fs::path source(path);
  fs::create_directories(quarantine_dir(), ec);
  fs::path target = fs::path(quarantine_dir()) / source.filename();
  for (int suffix = 1; fs::exists(target, ec); ++suffix) {
    target = fs::path(quarantine_dir()) /
             (source.filename().string() + "." + std::to_string(suffix));
  }
  fs::rename(source, target, ec);
  if (ec) {
    // Same-filesystem rename should not fail; if it somehow does, fall
    // back to removal so the bad file cannot be re-trusted next start.
    fs::remove_all(source, ec);
  }
  ++metrics_.quarantined_files;
}

void Daemon::retire_job_locked(const Job& job) {
  if (config_.spool_dir.empty()) {
    return;
  }
  if (journal_) {
    journal_->append(SpoolJournal::Record::kTerminal, job.fingerprint);
  }
  spool_remove_job(job);
}

void Daemon::spool_write_job(const Job& job) const {
  BitWriter payload;
  payload.write_varuint(kSpoolVersion);
  snap::put_u64(payload, job.fingerprint);
  const BitWriter request = encode_request(make_submit(job.request));
  snap::put_bits(payload, request.data(), request.bit_size());
  write_file_atomic(
      fs::path(jobs_dir()) / ("job-" + fingerprint_hex(job.fingerprint) + ".req"),
      payload);
}

void Daemon::spool_remove_job(const Job& job) const {
  std::error_code ec;
  fs::remove(
      fs::path(jobs_dir()) / ("job-" + fingerprint_hex(job.fingerprint) + ".req"),
      ec);
  fs::remove_all(ckpt_dir(job.fingerprint), ec);
}

void Daemon::persist_cache_entry(std::uint64_t fingerprint,
                                 const CachedResult& result) const {
  BitWriter payload;
  payload.write_varuint(kSpoolVersion);
  snap::put_u64(payload, fingerprint);
  snap::put_u64(payload, result.run_status);
  snap::put_bits(payload, result.block_bytes.data(),
                 static_cast<std::size_t>(result.block_bits));
  write_file_atomic(
      fs::path(cache_dir()) / ("res-" + fingerprint_hex(fingerprint) + ".res"),
      payload);
}

void Daemon::remove_cache_entry(std::uint64_t fingerprint) const {
  std::error_code ec;
  fs::remove(
      fs::path(cache_dir()) / ("res-" + fingerprint_hex(fingerprint) + ".res"),
      ec);
}

void Daemon::flush_cache_index_locked() const {
  const std::vector<std::uint64_t> keys = cache_.keys_lru_order();
  std::error_code ec;
  fs::create_directories(cache_dir(), ec);
  const fs::path index = fs::path(cache_dir()) / "index.txt";
  const fs::path tmp = fs::path(cache_dir()) / "index.txt.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    for (const std::uint64_t fp : keys) {
      out << fingerprint_hex(fp) << "\n";
    }
    if (!out) {
      return;  // best-effort
    }
  }
  fs::rename(tmp, index, ec);
  // Prune result files the in-memory LRU evicted, so the restarted cache
  // matches the drained one.
  std::unordered_set<std::string> keep;
  for (const std::uint64_t fp : keys) {
    keep.insert("res-" + fingerprint_hex(fp) + ".res");
  }
  for (const auto& entry : fs::directory_iterator(cache_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("res-", 0) == 0 && keep.find(name) == keep.end()) {
      fs::remove(entry.path(), ec);
    }
  }
}

void Daemon::recover_spool() {
  std::error_code ec;

  // 0. Journal replay: which spooled jobs are live work vs leftovers of
  //    finished work.  A corrupt journal never blocks startup — replay
  //    simply stops at the last intact record, and an unopenable file
  //    just means serving without lifecycle records this run.
  journal_ = std::make_unique<SpoolJournal>(config_.spool_dir + "/journal.log");
  std::unordered_set<std::uint64_t> journal_live;
  std::unordered_set<std::uint64_t> journal_retired;
  try {
    const SpoolJournal::Recovery recovery = journal_->open_and_recover();
    journal_live.insert(recovery.live.begin(), recovery.live.end());
    journal_retired.insert(recovery.retired.begin(), recovery.retired.end());
    // Compact to *empty*, not to the live set: every re-admitted job
    // appends a fresh ADMIT through admit_locked below, and a pre-seeded
    // record would double-count it (net 2, so one TERMINAL later would
    // leave a phantom live entry).
    journal_->compact({});
  } catch (const std::exception&) {
    journal_.reset();
  }

  // 1. Warm cache, least recently used first so put() order restores
  //    recency exactly as flushed.  A missing file is a non-event (index
  //    staleness); a file that fails its CBCSNAP1 hash or decodes wrong
  //    is quarantined — startup must survive arbitrary disk corruption.
  const auto load_res = [this](std::uint64_t fp) -> bool {
    const fs::path path =
        fs::path(cache_dir()) / ("res-" + fingerprint_hex(fp) + ".res");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return false;
    }
    try {
      const SnapshotPayload payload = read_snapshot_container(in);
      BitReader r = payload.reader();
      if (r.read_varuint() != kSpoolVersion) {
        throw SnapshotError("spool version mismatch");
      }
      if (snap::get_u64(r) != fp) {
        throw SnapshotError("fingerprint mismatch");
      }
      const std::uint64_t status = snap::get_u64(r);
      auto result = std::make_shared<CachedResult>();
      result->block_bits = snap::get_bits(r, result->block_bytes);
      result->run_status = static_cast<std::uint8_t>(status);
      cache_.put(fp, std::move(result));
      return true;
    } catch (const std::exception&) {
      quarantine_path(path.string());
      return false;
    }
  };

  std::unordered_set<std::uint64_t> loaded;
  {
    std::ifstream index(fs::path(cache_dir()) / "index.txt");
    std::string line;
    while (std::getline(index, line)) {
      if (line.empty()) {
        continue;
      }
      const std::uint64_t fp = std::strtoull(line.c_str(), nullptr, 16);
      if (load_res(fp)) {
        loaded.insert(fp);
      }
    }
  }
  // Entries persisted after the last index flush (crash, not drain) —
  // recency is approximate for these, correctness is not affected.
  for (const auto& entry : fs::directory_iterator(cache_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("res-", 0) != 0 || name.size() != 4 + 16 + 4) {
      continue;
    }
    const std::uint64_t fp = std::strtoull(name.substr(4, 16).c_str(), nullptr, 16);
    if (loaded.find(fp) == loaded.end()) {
      load_res(fp);
    }
  }

  // 2. Interrupted jobs: re-admit each spooled request, resuming from its
  //    newest *valid* checkpoint.  The journal separates live work from
  //    the leftovers of finished work (a kill -9 between the TERMINAL
  //    record and the unlink leaves a stale .req that must never re-run);
  //    anything unreadable or inconsistent is quarantined, not trusted.
  ec.clear();
  for (const auto& entry : fs::directory_iterator(jobs_dir(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("job-", 0) != 0 || name.size() < 4 + 16 + 4) {
      continue;
    }
    try {
      std::ifstream in(entry.path(), std::ios::binary);
      const SnapshotPayload container = read_snapshot_container(in);
      BitReader r = container.reader();
      if (r.read_varuint() != kSpoolVersion) {
        quarantine_path(entry.path().string());
        continue;
      }
      const std::uint64_t fp = snap::get_u64(r);
      if (journal_retired.count(fp) != 0 && journal_live.count(fp) == 0) {
        // The journal says this job already finished; the crash landed in
        // the window between its TERMINAL record and the unlink.  Remove,
        // never re-run — re-running would duplicate completed work.
        fs::remove(entry.path(), ec);
        fs::remove_all(ckpt_dir(fp), ec);
        continue;
      }
      FramePayload request_payload;
      request_payload.bits = snap::get_bits(r, request_payload.bytes);
      const Request request = decode_request(request_payload);
      if (request.type != MsgType::kSubmit) {
        quarantine_path(entry.path().string());
        continue;
      }
      Graph graph(0, {});
      DistributedBcOptions options;
      SubmitRequest canonical;
      parse_submit(request.submit, graph, options, canonical);
      if (run_fingerprint(graph, options) != fp) {
        quarantine_path(entry.path().string());  // stale or corrupted entry
        continue;
      }
      if (cache_.peek(fp) != nullptr) {
        // Finished before the previous daemon exited; nothing to resume.
        fs::remove(entry.path(), ec);
        fs::remove_all(ckpt_dir(fp), ec);
        continue;
      }
      auto job = std::make_shared<Job>();
      job->fingerprint = fp;
      job->request = std::move(canonical);
      job->graph = std::move(graph);
      job->options = std::move(options);
      job->submitted = std::chrono::steady_clock::now();
      // Newest checkpoint that actually decodes; corrupt ones (torn
      // writes, bit rot) are quarantined and the scan falls back to the
      // next-oldest — worst case the job restarts from round zero.
      const std::vector<std::string> checkpoints =
          list_checkpoints(ckpt_dir(fp));
      for (auto ck = checkpoints.rbegin(); ck != checkpoints.rend(); ++ck) {
        bool valid = false;
        std::ifstream ckin(*ck, std::ios::binary);
        if (ckin) {
          try {
            (void)read_snapshot_container(ckin);
            valid = true;
          } catch (const std::exception&) {
          }
        }
        if (valid) {
          job->resume_from = *ck;
          break;
        }
        quarantine_path(*ck);
      }
      std::lock_guard<std::mutex> lock(mutex_);
      job->id = next_job_id_++;
      ++metrics_.jobs_resumed;
      admit_locked(job);
    } catch (const std::exception&) {
      quarantine_path(entry.path().string());  // unreadable spool entry
    }
  }
}

void Daemon::dump_metrics() {
  try {
    const std::string json = to_json(stats());
    const fs::path target(config_.metrics_path);
    const fs::path tmp = config_.metrics_path + ".tmp";
    if (target.has_parent_path()) {
      fs::create_directories(target.parent_path());
    }
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << json << "\n";
      if (!out) {
        return;
      }
    }
    std::error_code ec;
    fs::rename(tmp, target, ec);
  } catch (const std::exception&) {
    // Metrics are best-effort observability; never take the daemon down.
  }
}

}  // namespace congestbc::service
