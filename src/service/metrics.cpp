#include "service/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/report_json.hpp"

namespace congestbc::service {

void ServiceMetrics::record_latency_ms(double ms) {
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(ms);
    latency_next_ = latencies_.size() % kLatencyWindow;
    latency_full_ = latencies_.size() == kLatencyWindow;
    return;
  }
  latencies_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

double ServiceMetrics::latency_percentile(double p) const {
  if (latencies_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Linear interpolation between the two bracketing order statistics.
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::uint64_t ServiceMetrics::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

StatsReply ServiceMetrics::snapshot(std::uint64_t queue_depth,
                                    std::uint64_t running,
                                    std::uint64_t workers,
                                    std::uint64_t cache_entries,
                                    std::uint64_t cache_hits,
                                    std::uint64_t cache_misses,
                                    std::uint64_t cache_evictions,
                                    double worker_utilization) const {
  StatsReply s;
  s.uptime_ms = uptime_ms();
  s.submits = submits;
  s.cache_hits = cache_hits;
  s.cache_misses = cache_misses;
  s.coalesced = coalesced;
  s.busy_rejections = busy_rejections;
  s.draining_rejections = draining_rejections;
  s.jobs_completed = jobs_completed;
  s.jobs_failed = jobs_failed;
  s.jobs_cancelled = jobs_cancelled;
  s.jobs_suspended = jobs_suspended;
  s.jobs_resumed = jobs_resumed;
  s.protocol_errors = protocol_errors;
  s.queue_depth = queue_depth;
  s.running = running;
  s.workers = workers;
  s.cache_entries = cache_entries;
  s.cache_evictions = cache_evictions;
  s.qps = s.uptime_ms == 0
              ? 0.0
              : static_cast<double>(submits) * 1000.0 /
                    static_cast<double>(s.uptime_ms);
  s.worker_utilization = worker_utilization;
  s.latency_p50_ms = latency_percentile(50.0);
  s.latency_p90_ms = latency_percentile(90.0);
  s.latency_p99_ms = latency_percentile(99.0);
  return s;
}

std::string to_json(const StatsReply& stats) {
  JsonWriter w;
  w.begin_object();
  w.key("uptime_ms").value(stats.uptime_ms);
  w.key("submits").value(stats.submits);
  w.key("cache_hits").value(stats.cache_hits);
  w.key("cache_misses").value(stats.cache_misses);
  const std::uint64_t lookups = stats.cache_hits + stats.cache_misses;
  w.key("cache_hit_rate")
      .value(lookups == 0 ? 0.0
                          : static_cast<double>(stats.cache_hits) /
                                static_cast<double>(lookups));
  w.key("coalesced").value(stats.coalesced);
  w.key("busy_rejections").value(stats.busy_rejections);
  w.key("draining_rejections").value(stats.draining_rejections);
  w.key("jobs_completed").value(stats.jobs_completed);
  w.key("jobs_failed").value(stats.jobs_failed);
  w.key("jobs_cancelled").value(stats.jobs_cancelled);
  w.key("jobs_suspended").value(stats.jobs_suspended);
  w.key("jobs_resumed").value(stats.jobs_resumed);
  w.key("protocol_errors").value(stats.protocol_errors);
  w.key("queue_depth").value(stats.queue_depth);
  w.key("running").value(stats.running);
  w.key("workers").value(stats.workers);
  w.key("cache_entries").value(stats.cache_entries);
  w.key("cache_evictions").value(stats.cache_evictions);
  w.key("qps").value(stats.qps);
  w.key("worker_utilization").value(stats.worker_utilization);
  w.key("latency_p50_ms").value(stats.latency_p50_ms);
  w.key("latency_p90_ms").value(stats.latency_p90_ms);
  w.key("latency_p99_ms").value(stats.latency_p99_ms);
  w.end_object();
  return w.str();
}

}  // namespace congestbc::service
