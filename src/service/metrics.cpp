#include "service/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "core/report_json.hpp"
#include "obs/prom_text.hpp"

namespace congestbc::service {

void ServiceMetrics::record_latency_ms(double ms) {
  latency_ms_hist.add(static_cast<std::uint64_t>(ms < 0.0 ? 0.0 : ms));
  if (latencies_.size() < kLatencyWindow) {
    latencies_.push_back(ms);
    latency_next_ = latencies_.size() % kLatencyWindow;
    latency_full_ = latencies_.size() == kLatencyWindow;
    return;
  }
  latencies_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % kLatencyWindow;
}

double ServiceMetrics::latency_percentile(double p) const {
  if (latencies_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Linear interpolation between the two bracketing order statistics.
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void ServiceMetrics::record_job_rounds(std::uint64_t rounds,
                                       double latency_ms) {
  job_rounds_hist.add(rounds);
  // Sub-millisecond jobs round up to 1 ms so the throughput stays finite
  // (and conservative) instead of exploding.
  const double ms = latency_ms < 1.0 ? 1.0 : latency_ms;
  round_throughput_hist.add(
      static_cast<std::uint64_t>(static_cast<double>(rounds) * 1000.0 / ms));
}

std::uint64_t ServiceMetrics::uptime_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

StatsReply ServiceMetrics::snapshot(std::uint64_t queue_depth,
                                    std::uint64_t running,
                                    std::uint64_t workers,
                                    std::uint64_t cache_entries,
                                    std::uint64_t cache_hits,
                                    std::uint64_t cache_misses,
                                    std::uint64_t cache_evictions,
                                    double worker_utilization,
                                    std::uint64_t graph_version) const {
  StatsReply s;
  s.uptime_ms = uptime_ms();
  s.submits = submits;
  s.cache_hits = cache_hits;
  s.cache_misses = cache_misses;
  s.coalesced = coalesced;
  s.busy_rejections = busy_rejections;
  s.draining_rejections = draining_rejections;
  s.jobs_completed = jobs_completed;
  s.jobs_failed = jobs_failed;
  s.jobs_cancelled = jobs_cancelled;
  s.jobs_suspended = jobs_suspended;
  s.jobs_resumed = jobs_resumed;
  s.protocol_errors = protocol_errors;
  s.queue_depth = queue_depth;
  s.running = running;
  s.workers = workers;
  s.cache_entries = cache_entries;
  s.cache_evictions = cache_evictions;
  s.retried_submits = retried_submits;
  s.deadline_rejections = deadline_rejections;
  s.deadline_expired = deadline_expired;
  s.quarantined_files = quarantined_files;
  s.mutations_applied = mutations_applied;
  s.graph_version = graph_version;
  s.dirty_sources_rerun = dirty_sources_rerun;
  s.cache_invalidations = cache_invalidations;
  s.backend_downgrades = backend_downgrades;
  s.migrated_out = migrated_out;
  s.migrated_in = migrated_in;
  s.lookups_served = lookups_served;
  s.qps = s.uptime_ms == 0
              ? 0.0
              : static_cast<double>(submits) * 1000.0 /
                    static_cast<double>(s.uptime_ms);
  s.worker_utilization = worker_utilization;
  s.latency_p50_ms = latency_percentile(50.0);
  s.latency_p90_ms = latency_percentile(90.0);
  s.latency_p99_ms = latency_percentile(99.0);
  return s;
}

std::string to_json(const StatsReply& stats) {
  JsonWriter w;
  w.begin_object();
  w.key("uptime_ms").value(stats.uptime_ms);
  w.key("submits").value(stats.submits);
  w.key("cache_hits").value(stats.cache_hits);
  w.key("cache_misses").value(stats.cache_misses);
  const std::uint64_t lookups = stats.cache_hits + stats.cache_misses;
  w.key("cache_hit_rate")
      .value(lookups == 0 ? 0.0
                          : static_cast<double>(stats.cache_hits) /
                                static_cast<double>(lookups));
  w.key("coalesced").value(stats.coalesced);
  w.key("busy_rejections").value(stats.busy_rejections);
  w.key("draining_rejections").value(stats.draining_rejections);
  w.key("jobs_completed").value(stats.jobs_completed);
  w.key("jobs_failed").value(stats.jobs_failed);
  w.key("jobs_cancelled").value(stats.jobs_cancelled);
  w.key("jobs_suspended").value(stats.jobs_suspended);
  w.key("jobs_resumed").value(stats.jobs_resumed);
  w.key("protocol_errors").value(stats.protocol_errors);
  w.key("queue_depth").value(stats.queue_depth);
  w.key("running").value(stats.running);
  w.key("workers").value(stats.workers);
  w.key("cache_entries").value(stats.cache_entries);
  w.key("cache_evictions").value(stats.cache_evictions);
  w.key("retried_submits").value(stats.retried_submits);
  w.key("deadline_rejections").value(stats.deadline_rejections);
  w.key("deadline_expired").value(stats.deadline_expired);
  w.key("quarantined_files").value(stats.quarantined_files);
  w.key("mutations_applied").value(stats.mutations_applied);
  w.key("graph_version").value(stats.graph_version);
  w.key("dirty_sources_rerun").value(stats.dirty_sources_rerun);
  w.key("cache_invalidations").value(stats.cache_invalidations);
  w.key("backend_downgrades").value(stats.backend_downgrades);
  w.key("migrated_out").value(stats.migrated_out);
  w.key("migrated_in").value(stats.migrated_in);
  w.key("lookups_served").value(stats.lookups_served);
  w.key("qps").value(stats.qps);
  w.key("worker_utilization").value(stats.worker_utilization);
  w.key("latency_p50_ms").value(stats.latency_p50_ms);
  w.key("latency_p90_ms").value(stats.latency_p90_ms);
  w.key("latency_p99_ms").value(stats.latency_p99_ms);
  w.end_object();
  return w.str();
}

std::string prometheus_text(const StatsReply& stats,
                            const obs::Histogram& latency_ms,
                            const obs::Histogram& job_rounds,
                            const obs::Histogram& round_throughput) {
  obs::PromWriter w;
  w.gauge("congestbcd_uptime_ms", "Milliseconds since the daemon started",
          static_cast<double>(stats.uptime_ms));
  w.counter("congestbcd_submits_total", "SUBMIT requests accepted for parsing",
            stats.submits);
  w.counter("congestbcd_cache_hits_total",
            "Submits answered from the result cache", stats.cache_hits);
  w.counter("congestbcd_cache_misses_total",
            "Cache lookups that missed", stats.cache_misses);
  w.counter("congestbcd_coalesced_total",
            "Submits attached to an identical in-flight job", stats.coalesced);
  w.counter("congestbcd_busy_rejections_total",
            "Submits rejected because the queue was full",
            stats.busy_rejections);
  w.counter("congestbcd_draining_rejections_total",
            "Submits rejected during drain", stats.draining_rejections);
  w.counter("congestbcd_jobs_completed_total", "Jobs finished successfully",
            stats.jobs_completed);
  w.counter("congestbcd_jobs_failed_total", "Jobs that ended in failure",
            stats.jobs_failed);
  w.counter("congestbcd_jobs_cancelled_total", "Jobs cancelled by clients",
            stats.jobs_cancelled);
  w.counter("congestbcd_jobs_suspended_total",
            "Jobs suspended with a resumable checkpoint", stats.jobs_suspended);
  w.counter("congestbcd_jobs_resumed_total",
            "Jobs resumed from a spooled checkpoint", stats.jobs_resumed);
  w.counter("congestbcd_protocol_errors_total",
            "Malformed frames answered with a typed error",
            stats.protocol_errors);
  w.gauge("congestbcd_queue_depth", "Jobs admitted but not yet running",
          static_cast<double>(stats.queue_depth));
  w.gauge("congestbcd_running_jobs", "Jobs currently executing",
          static_cast<double>(stats.running));
  w.gauge("congestbcd_workers", "Worker pool size",
          static_cast<double>(stats.workers));
  w.gauge("congestbcd_cache_entries", "Result-cache entries resident",
          static_cast<double>(stats.cache_entries));
  w.counter("congestbcd_cache_evictions_total", "Result-cache LRU evictions",
            stats.cache_evictions);
  w.counter("congestbcd_retried_submits_total",
            "Submits marked by the client as a retry (attempt > 1)",
            stats.retried_submits);
  w.counter("congestbcd_deadline_rejections_total",
            "Submits rejected at admission because the client deadline "
            "could not be met",
            stats.deadline_rejections);
  w.counter("congestbcd_deadline_expired_total",
            "Admitted jobs failed because the client deadline ran out",
            stats.deadline_expired);
  w.counter("congestbcd_quarantined_files_total",
            "Corrupt spool/cache/checkpoint files quarantined at startup",
            stats.quarantined_files);
  w.counter("congestbcd_mutations_applied_total",
            "Edge operations applied to live stream graphs",
            stats.mutations_applied);
  w.gauge("congestbcd_graph_version",
          "Highest live stream-graph version across namespaces",
          static_cast<double>(stats.graph_version));
  w.counter("congestbcd_dirty_sources_rerun_total",
            "Sources re-executed by incremental BC maintainers",
            stats.dirty_sources_rerun);
  w.counter("congestbcd_cache_invalidations_total",
            "Result-cache entries invalidated by stream mutations",
            stats.cache_invalidations);
  w.counter("congestbcd_backend_downgrades_total",
            "backend=auto jobs downgraded to sampled under queue pressure",
            stats.backend_downgrades);
  w.counter("congestbcd_migrated_out_total",
            "Jobs shipped to another worker during drain",
            stats.migrated_out);
  w.counter("congestbcd_migrated_in_total",
            "Migrated jobs validated and admitted from another worker",
            stats.migrated_in);
  w.counter("congestbcd_lookups_served_total",
            "Cross-worker cache probes answered from the local cache",
            stats.lookups_served);
  w.gauge("congestbcd_qps", "Submits per second over the daemon lifetime",
          stats.qps);
  w.gauge("congestbcd_worker_utilization",
          "Fraction of worker wall-time spent inside jobs",
          stats.worker_utilization);
  w.gauge("congestbcd_job_latency_p50_ms",
          "Median submit-to-terminal latency (recent window)",
          stats.latency_p50_ms);
  w.gauge("congestbcd_job_latency_p90_ms",
          "p90 submit-to-terminal latency (recent window)",
          stats.latency_p90_ms);
  w.gauge("congestbcd_job_latency_p99_ms",
          "p99 submit-to-terminal latency (recent window)",
          stats.latency_p99_ms);
  w.histogram("congestbcd_job_latency_ms",
              "Submit-to-terminal latency of terminal jobs (ms)", latency_ms);
  w.histogram("congestbcd_job_rounds",
              "Simulated CONGEST rounds per executed job", job_rounds);
  w.histogram("congestbcd_job_round_throughput",
              "Simulated rounds per wall-second per executed job",
              round_throughput);
  return w.str();
}

}  // namespace congestbc::service
