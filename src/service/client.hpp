// Blocking client for the BC serving daemon (service/daemon.hpp).
//
// One TCP connection, strict request/reply: every call sends one frame
// and blocks for exactly one reply frame (the protocol guarantees the
// daemon answers in order).  An ERROR reply from the daemon is rethrown
// as the ProtocolError it encodes; socket failures and timeouts throw
// std::runtime_error.  Both the congestbc_client tool and the in-process
// service tests drive the daemon through this class, so the wire path is
// exercised even when client and daemon share an address space.
//
// Deadline accounting: the socket is non-blocking and every operation —
// including connect() itself — runs a poll(2) loop against an absolute
// deadline computed once at entry.  A partial read or write never
// resets the clock (the old SO_RCVTIMEO scheme restarted the timer on
// every syscall, so a trickling peer could stretch one "30 s" call
// indefinitely), and EINTR recomputes the remaining budget from the
// original deadline instead of retrying with a stale timeout.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "service/protocol.hpp"

namespace congestbc::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects within `timeout_ms` (a blocking ::connect to a dead host
  /// could otherwise hang for minutes); the same value becomes the
  /// per-call I/O deadline until set_io_timeout() changes it.
  void connect(const std::string& host, std::uint16_t port,
               int timeout_ms = 30000);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Per-call deadline for subsequent call()s, in ms from call entry.
  void set_io_timeout(int timeout_ms) { io_timeout_ms_ = timeout_ms; }
  int io_timeout() const { return io_timeout_ms_; }

  /// One round trip: send the request frame, block for the reply frame.
  Reply call(const Request& request);

  // Typed wrappers over call().
  SubmitReply submit(const SubmitRequest& request);
  MutateReply mutate(const MutateRequest& request);
  StatusReply status(std::uint64_t job_id);
  ResultReply result(std::uint64_t job_id);
  CancelReply cancel(std::uint64_t job_id);
  StatsReply stats();
  ShutdownReply shutdown();
  // v6 cluster calls (router <-> worker links).
  JoinReply join(const JoinRequest& request);
  LeaveReply leave(const LeaveRequest& request);
  MigrateReply migrate(const MigrateRequest& request);
  LookupReply lookup(std::uint64_t fingerprint);

  /// Polls RESULT every `poll_ms` until the reply is ready or the job
  /// reaches a state polling cannot cure (failed lookups, cancellation,
  /// drain suspension are returned to the caller to inspect).  Throws
  /// std::runtime_error after `timeout_ms`.
  ResultReply wait_result(std::uint64_t job_id, int poll_ms = 20,
                          int timeout_ms = 120000);

 private:
  using Deadline = std::chrono::steady_clock::time_point;

  void send_frame(const Request& request, Deadline deadline);
  Reply read_reply(Deadline deadline);

  int fd_ = -1;
  int io_timeout_ms_ = 30000;
  FrameDecoder decoder_;
};

}  // namespace congestbc::service
