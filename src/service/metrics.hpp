// Serving-plane observability: counters, latency percentiles, and the
// periodic JSON dump.
//
// The simulator's RunMetrics measures one run from the inside (rounds,
// bits); ServiceMetrics measures the daemon from the outside — request
// rates, cache effectiveness, queue pressure, tail latency, worker
// utilization.  STATS replies and the JSON metrics file are two views of
// the same StatsReply snapshot, so dashboards and clients can never
// disagree.
//
// Not internally synchronized: the daemon mutates it under its scheduler
// mutex (see cache.hpp for the rationale).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "service/protocol.hpp"

namespace congestbc::service {

class ServiceMetrics {
 public:
  ServiceMetrics() : start_(std::chrono::steady_clock::now()) {}

  // Admission-plane counters (the daemon bumps these directly).
  std::uint64_t submits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t busy_rejections = 0;
  std::uint64_t draining_rejections = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t jobs_suspended = 0;
  std::uint64_t jobs_resumed = 0;
  std::uint64_t protocol_errors = 0;
  // Chaos/retry-plane counters (PR 6): visibility into the self-healing
  // path — how often clients resend, how often deadline admission says
  // no, how many jobs die mid-run on an expired budget, and how many
  // state files the startup integrity scan had to quarantine.
  std::uint64_t retried_submits = 0;
  std::uint64_t deadline_rejections = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t quarantined_files = 0;
  // Streaming-plane counters (PR 8): the mutation ingest path — edge ops
  // that changed a live graph, sources the incremental maintainers had
  // to re-run, and cache entries invalidated by fingerprint delta.
  std::uint64_t mutations_applied = 0;
  std::uint64_t dirty_sources_rerun = 0;
  std::uint64_t cache_invalidations = 0;
  // Portfolio-plane counter (PR 9): backend=auto jobs the admission path
  // downgraded to the sampled backend under queue pressure.
  std::uint64_t backend_downgrades = 0;
  // Cluster-plane counters (PR 10): drain-time job transplants between
  // workers and cross-worker cache probes served from this cache.
  std::uint64_t migrated_out = 0;
  std::uint64_t migrated_in = 0;
  std::uint64_t lookups_served = 0;

  // Whole-life histograms behind the /metrics endpoint (the percentile
  // window above describes recent behavior; these never forget).
  obs::Histogram latency_ms_hist;
  obs::Histogram job_rounds_hist;
  /// Simulated rounds per wall-second of one job — the per-job round
  /// throughput the /metrics endpoint exposes.
  obs::Histogram round_throughput_hist;

  /// Submit-to-terminal latency of one finished job.  Keeps the most
  /// recent kLatencyWindow samples (ring buffer): percentiles describe
  /// recent behavior, not the daemon's whole life.  Also feeds
  /// latency_ms_hist.
  void record_latency_ms(double ms);

  /// Round count + throughput of one terminal job that actually ran.
  void record_job_rounds(std::uint64_t rounds, double latency_ms);

  /// Interpolated percentile over the retained window; 0 when empty.
  /// p in [0, 100].
  double latency_percentile(double p) const;

  std::uint64_t uptime_ms() const;

  /// Builds the full snapshot from the counters plus the live gauges only
  /// the daemon knows.
  StatsReply snapshot(std::uint64_t queue_depth, std::uint64_t running,
                      std::uint64_t workers, std::uint64_t cache_entries,
                      std::uint64_t cache_hits, std::uint64_t cache_misses,
                      std::uint64_t cache_evictions, double worker_utilization,
                      std::uint64_t graph_version = 0) const;

  static constexpr std::size_t kLatencyWindow = 4096;

 private:
  std::chrono::steady_clock::time_point start_;
  std::vector<double> latencies_;  ///< ring buffer, kLatencyWindow cap
  std::size_t latency_next_ = 0;
  bool latency_full_ = false;
};

/// The StatsReply as a JSON object (core/report_json.hpp writer) — the
/// payload of the daemon's --metrics-file dump.
std::string to_json(const StatsReply& stats);

/// The same snapshot (plus the whole-life histograms) as a Prometheus
/// text-format (0.0.4) page — the body of the daemon's GET /metrics
/// reply.  Deterministic for fixed inputs (golden-tested).
std::string prometheus_text(const StatsReply& stats,
                            const obs::Histogram& latency_ms,
                            const obs::Histogram& job_rounds,
                            const obs::Histogram& round_throughput);

}  // namespace congestbc::service
