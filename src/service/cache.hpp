// Fingerprint-keyed LRU cache of finished BC results.
//
// The key is run_fingerprint(graph, options) (algo/bc_pipeline.hpp) —
// the same graph/fault-plan bytes the checkpoint resume path validates
// (snapshot/fingerprint.hpp), so a hit is exactly as trustworthy as a
// resume.  The value is the *encoded* ResultBlock (protocol.hpp): the
// daemon caches the bytes it would send, so a hit serves a bit-identical
// reply to what the original execution produced — no re-serialization,
// no float round-trip, nothing to diverge.
//
// Not internally synchronized: the daemon guards it with its scheduler
// mutex (one lock already covers the queue + coalescing map; a second
// would only add ordering hazards).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

namespace congestbc::service {

/// One cached result: the encoded ResultBlock plus the summary fields
/// STATUS answers without decoding the block.
struct CachedResult {
  std::vector<std::uint8_t> block_bytes;
  std::uint64_t block_bits = 0;
  std::uint8_t run_status = 0;  ///< congestbc::RunStatus of the execution
};

/// Classic LRU over shared_ptr values (shared so a reply being written
/// out survives the entry's eviction).  Capacity is an entry count;
/// betweenness vectors dominate the bytes and graphs served repeatedly
/// are what the cache is for, so simple count-based bounding is enough
/// until a sharding PR needs byte-accounting.
class LruResultCache {
 public:
  /// capacity == 0 disables caching (every get misses, puts are dropped).
  explicit LruResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks up and — on a hit — marks the entry most recently used.
  /// Counts a hit or a miss.
  std::shared_ptr<const CachedResult> get(std::uint64_t fingerprint);

  /// Peeks without touching recency or counters (STATUS queries, the
  /// drain-time index flush).
  std::shared_ptr<const CachedResult> peek(std::uint64_t fingerprint) const;

  /// Inserts or refreshes; evicts the least recently used entry when
  /// over capacity.
  void put(std::uint64_t fingerprint, std::shared_ptr<const CachedResult> result);

  /// Removes one entry (targeted invalidation — a stream mutation
  /// superseding the fingerprint, not capacity pressure, so it does NOT
  /// count as an eviction).  Returns whether the entry existed.
  bool erase(std::uint64_t fingerprint);

  /// Fingerprints in least-to-most recently used order — the persisted
  /// index a restarted daemon replays (in order) to restore recency.
  std::vector<std::uint64_t> keys_lru_order() const;

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    std::uint64_t fingerprint;
    std::shared_ptr<const CachedResult> result;
  };

  std::size_t capacity_;
  /// Most recently used at the front.
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace congestbc::service
