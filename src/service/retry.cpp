#include "service/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

namespace congestbc::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_until(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<std::uint64_t>(left.count());
}

int clamp_to_int(std::uint64_t ms) {
  const auto cap =
      static_cast<std::uint64_t>(std::numeric_limits<int>::max());
  return static_cast<int>(std::min(ms, cap));
}

}  // namespace

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      jitter_(policy.jitter_seed) {}

void RetryingClient::ensure_connected(std::uint64_t remaining_ms) {
  if (client_.connected()) {
    return;
  }
  const std::uint64_t budget = std::min(
      remaining_ms, static_cast<std::uint64_t>(policy_.attempt_timeout_ms));
  client_.connect(host_, port_, std::max(1, clamp_to_int(budget)));
  ++stats_.reconnects;
}

std::uint64_t RetryingClient::backoff_for(int attempt,
                                          std::uint64_t remaining_ms) {
  double base = static_cast<double>(policy_.initial_backoff_ms) *
                std::pow(policy_.backoff_multiplier, attempt - 1);
  base = std::min(base, static_cast<double>(policy_.max_backoff_ms));
  // Jitter in [0.5, 1.0]× desynchronizes retry herds; the seeded stream
  // keeps a given (seed, attempt) schedule replayable.
  const double jittered = base * (0.5 + 0.5 * jitter_.next_double());
  const auto chosen = static_cast<std::uint64_t>(jittered);
  return std::min(chosen, remaining_ms);
}

ResultReply RetryingClient::submit_and_wait(SubmitRequest request) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(policy_.overall_deadline_ms);
  std::string last_error = "no attempt was made";
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    std::uint64_t remaining = ms_until(deadline);
    if (remaining == 0) {
      throw RetryError("overall deadline exhausted after " +
                           std::to_string(stats_.attempts) +
                           " attempt(s); last error: " + last_error,
                       /*retryable_cause=*/true);
    }
    ++stats_.attempts;
    request.attempt = static_cast<std::uint32_t>(attempt);
    request.deadline_ms = remaining;
    try {
      ensure_connected(remaining);
      client_.set_io_timeout(std::max(
          1, clamp_to_int(std::min(
                 remaining,
                 static_cast<std::uint64_t>(policy_.attempt_timeout_ms)))));
      const SubmitReply sub = client_.submit(request);
      switch (sub.disposition) {
        case SubmitDisposition::kRejected:
          throw RetryError("daemon rejected the job: " + sub.detail,
                           /*retryable_cause=*/false);
        case SubmitDisposition::kDeadline:
          throw RetryError(
              "daemon refused the job: deadline budget too small: " +
                  sub.detail,
              /*retryable_cause=*/false);
        case SubmitDisposition::kBusy:
        case SubmitDisposition::kDraining:
          last_error = std::string("submit answered ") +
                       to_string(sub.disposition);
          break;  // soft refusal: back off and resubmit
        default: {
          // Admitted (queued / coalesced / cache hit): poll out the
          // remaining overall budget.  Each RESULT round trip is still
          // bounded by the per-attempt I/O deadline set above.
          const ResultReply res = client_.wait_result(
              sub.job_id, policy_.poll_ms,
              std::max(1, clamp_to_int(ms_until(deadline))));
          if (res.ready) {
            return res;
          }
          if (res.state == JobState::kFailed) {
            // Deterministic failure (bad run, budget, deadline expiry):
            // the same submit fails the same way every time.
            throw RetryError("job failed: " + res.detail,
                             /*retryable_cause=*/false);
          }
          // kCancelled / kSuspended / kUnknown: a resubmit converges on
          // the cache, a resumed execution, or a fresh one — retry.
          last_error =
              std::string("job ended ") + to_string(res.state) +
              (res.detail.empty() ? "" : (": " + res.detail));
          break;
        }
      }
    } catch (const RetryError&) {
      throw;
    } catch (const ProtocolError& e) {
      if (e.code() == ProtoError::kBadRequest ||
          e.code() == ProtoError::kBadVersion) {
        // The daemon understood us and said no; retrying cannot change
        // its mind.
        throw RetryError(std::string("daemon rejected the request: ") +
                             e.what(),
                         /*retryable_cause=*/false);
      }
      if (e.code() == ProtoError::kCorrupted) {
        ++stats_.corrupted_frames;
      }
      ++stats_.transport_errors;
      client_.close();
      last_error = std::string(to_string(e.code())) + ": " + e.what();
    } catch (const std::runtime_error& e) {
      ++stats_.transport_errors;
      client_.close();
      last_error = e.what();
    }
    remaining = ms_until(deadline);
    if (remaining == 0 || attempt == policy_.max_attempts) {
      break;
    }
    const std::uint64_t pause = backoff_for(attempt, remaining);
    if (pause > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(pause));
      stats_.backoff_ms += pause;
    }
  }
  throw RetryError("retry budget exhausted after " +
                       std::to_string(stats_.attempts) +
                       " attempt(s); last error: " + last_error,
                   /*retryable_cause=*/true);
}

}  // namespace congestbc::service
