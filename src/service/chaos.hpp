// Deterministic socket-level chaos for the serving path.
//
// PR 1's FaultPlan proved the *simulated* CONGEST network stays
// bit-identical under seeded adversity; this is the same idea applied to
// the real TCP path between a client and congestbcd.  A ChaosProxy
// listens on a loopback port, relays every accepted connection to the
// upstream daemon, and misbehaves on the way: it re-chunks the byte
// stream and, per chunk, may corrupt a byte (tripping the CBCP header
// checksum), stall, forward only a torn prefix before disconnecting, or
// reset the connection outright.  Capping the chunk size yields partial
// writes and torn frames even when nothing else fires.
//
// Every decision is a pure function of (seed, connection, direction,
// chunk index) via the same SplitMix64-finalizer hashing FaultPlan uses
// — no RNG stream, no ordering dependence — so a failing chaos run is
// replayable from its seed alone.  The injector never rewrites lengths
// or invents bytes: corruption is detectable (checksum), cuts and RSTs
// are observable (EOF/ECONNRESET), and stalls are bounded, which is
// exactly the fault model the self-healing client (service/retry.hpp)
// promises to survive.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace congestbc::service {

/// A seeded, fully reproducible schedule of socket adversity.  The four
/// probabilities are mutually exclusive per chunk (they must sum to at
/// most 1; one hash draw decides).  Empty plan == a faithful relay.
struct ChaosPlan {
  std::uint64_t seed = 0;
  double corrupt_probability = 0.0;  ///< XOR one byte of the chunk
  double stall_probability = 0.0;    ///< hold the chunk for stall_ms
  double cut_probability = 0.0;      ///< forward a torn prefix, then FIN
  double rst_probability = 0.0;      ///< reset the connection (ECONNRESET)
  std::uint64_t stall_ms = 100;
  /// Max bytes relayed per chunk (0 = no cap).  Small values force
  /// partial writes and torn frames on every connection.
  std::uint64_t partial_cap = 0;
  /// First N chunks of every direction pass clean — lets a connection
  /// get far enough to make later injections interesting.
  std::uint64_t grace_chunks = 0;

  bool empty() const {
    return corrupt_probability == 0.0 && stall_probability == 0.0 &&
           cut_probability == 0.0 && rst_probability == 0.0 &&
           partial_cap == 0;
  }

  /// Throws PreconditionError on out-of-range or over-unit summed
  /// probabilities.
  void validate() const;

  /// Parses a comma-separated spec (the --chaos CLI value), e.g.
  ///   "seed=7,corrupt=0.05,stall=0.1,stall-ms=50,partial=64"
  ///   "seed=3,cut=0.02,rst=0.01,grace=2"
  /// Keys: seed, corrupt, stall, cut, rst (probabilities),
  /// stall-ms, partial, grace (u64).
  static ChaosPlan parse(const std::string& spec);

  /// One-line human-readable description (CLI banners, test logs).
  std::string describe() const;

  friend bool operator==(const ChaosPlan&, const ChaosPlan&) = default;
};

/// Injection counters, readable while the proxy serves.
struct ChaosStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> corrupted{0};
  std::atomic<std::uint64_t> stalled{0};
  std::atomic<std::uint64_t> cut{0};
  std::atomic<std::uint64_t> rst{0};
};

/// The relay itself.  start() binds a loopback listener and launches the
/// relay thread; stop() (or destruction) tears everything down.  Safe to
/// run in-process next to the daemon and its clients — the chaos tests
/// and loadgen do exactly that — or standalone via tools/chaosproxy.
class ChaosProxy {
 public:
  ChaosProxy(ChaosPlan plan, std::string upstream_host,
             std::uint16_t upstream_port);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds 127.0.0.1:`listen_port` (0 = ephemeral) and starts relaying.
  void start(std::uint16_t listen_port = 0);
  void stop();

  std::uint16_t port() const { return port_; }
  const ChaosPlan& plan() const { return plan_; }
  const ChaosStats& stats() const { return stats_; }

 private:
  struct Conn;

  void run();
  void accept_one();
  void pump(Conn& conn);
  bool shape_chunk(Conn& conn, int direction);
  bool flush_chunk(Conn& conn, int direction);
  void kill(Conn& conn, bool with_rst);

  ChaosPlan plan_;
  std::string upstream_host_;
  std::uint16_t upstream_port_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 0;
  ChaosStats stats_;
};

}  // namespace congestbc::service
