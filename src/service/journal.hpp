// Append-truncate-safe journal for the daemon's job spool.
//
// The spool files themselves are atomic (write-temp + rename), but the
// *lifecycle* of a spooled job was not: a `kill -9` landing between a
// job's terminal transition and the unlink of its job-<fp>.req re-ran
// the job on the next start (duplication), and nothing distinguished
// "this .req is live work" from "this .req is a leftover of finished
// work".  The journal closes that window with two tiny fsynced records:
//
//   ADMIT <fp>     appended right after job-<fp>.req lands on disk
//   TERMINAL <fp>  appended right before job-<fp>.req is unlinked
//
// Recovery replays the journal; an fp whose admits outnumber its
// terminals is live (resume it), anything else is finished (its stale
// .req, if the crash preserved one, is removed — never re-run).  Each
// record carries its own FNV-1a guard, and a torn tail — the half
// record a kill -9 can leave — is detected and truncated away, never
// misparsed: the journal is readable after any prefix of any append.
//
// Not internally synchronized: the daemon appends under its scheduler
// mutex, and recovery runs before serving starts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace congestbc::service {

class SpoolJournal {
 public:
  enum class Record : std::uint8_t {
    kAdmit = 1,     ///< job admitted; its .req is on disk
    kTerminal = 2,  ///< job reached a terminal state; .req unlink follows
    kMutate = 3,    ///< stream mutation committed: the fingerprint is the
                    ///< chained graph fingerprint of the new version,
                    ///< appended after the batch file lands and before
                    ///< the MUTATE reply — so an acknowledged version is
                    ///< always replayable, and a batch file without its
                    ///< record is an unacknowledged torn commit
  };

  /// What replaying the journal found.
  struct Recovery {
    /// Fingerprints with more admits than terminals — jobs to resume.
    std::vector<std::uint64_t> live;
    /// Fingerprints that reached a terminal record — their stale .req
    /// files (if any survived the crash) must be removed, not re-run.
    std::vector<std::uint64_t> retired;
    /// Chained graph fingerprints of committed stream mutations, in
    /// journal order.  Stream recovery accepts a namespace's batch
    /// files only up to the highest version whose fingerprint appears
    /// here; trailing files beyond it are torn commits.
    std::vector<std::uint64_t> mutations;
    std::uint64_t records = 0;    ///< intact records replayed
    std::uint64_t torn_bytes = 0;  ///< truncated tail (0 = clean file)
  };

  explicit SpoolJournal(std::string path) : path_(std::move(path)) {}
  ~SpoolJournal();

  SpoolJournal(const SpoolJournal&) = delete;
  SpoolJournal& operator=(const SpoolJournal&) = delete;

  /// Replays the journal (creating it when absent), truncates any torn
  /// tail, and opens for appending.  Throws std::runtime_error only when
  /// the file cannot be opened at all — a corrupt *content* never fails
  /// recovery, it just ends the replay at the last intact record.
  Recovery open_and_recover();

  /// Appends one record and fsyncs.  Failures are swallowed (the spool
  /// is best-effort durability; an unwritable journal must not take down
  /// admission) but remembered in write_failures().
  void append(Record kind, std::uint64_t fingerprint);

  /// Rewrites the journal to one ADMIT per `live` fingerprint plus one
  /// MUTATE per `mutations` fingerprint (atomic write-temp + rename),
  /// dropping the replayed history.  Called after recovery so the file
  /// stays proportional to live work — the daemon passes only each
  /// stream namespace's *head* fingerprint, not the whole chain.
  void compact(const std::vector<std::uint64_t>& live,
               const std::vector<std::uint64_t>& mutations = {});

  void close();

  const std::string& path() const { return path_; }
  std::uint64_t write_failures() const { return write_failures_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t write_failures_ = 0;
};

}  // namespace congestbc::service
