// Self-healing wrapper around the daemon client (service/client.hpp).
//
// A RetryingClient owns one Client and one RetryPolicy and turns the
// raw single-connection request/reply API into an at-most-one-execution,
// eventually-answered submit path:
//
//   * Transport failures (connection refused/reset, torn frames, header
//     checksum mismatches — ProtoError::kCorrupted — and per-attempt
//     deadline timeouts) tear the connection down, back off with
//     exponential, seeded-jitter delays, and retry on a fresh socket.
//   * Retries are idempotent by construction: a resubmit carries the
//     same result-determining fields, so the daemon's fingerprint
//     coalescing and result cache converge every attempt onto the one
//     execution (kCoalesced while it runs, kCacheHit after it lands).
//   * Deadline propagation: each attempt stamps the *remaining* overall
//     budget into SubmitRequest::deadline_ms and its 1-based attempt
//     number into SubmitRequest::attempt, so the daemon can refuse work
//     it cannot finish in time and the operator can count retries.
//
// Non-retryable outcomes — kRejected, kDeadline, a job that terminally
// failed, or an exhausted budget — surface as RetryError with the last
// cause attached: the caller always gets the exact answer or a typed
// failure, never a hang.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"
#include "service/client.hpp"

namespace congestbc::service {

/// Backoff and budget knobs.  The defaults suit an interactive client;
/// chaos tests crank max_attempts up and the backoff down.
struct RetryPolicy {
  int max_attempts = 5;
  std::uint64_t initial_backoff_ms = 25;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_ms = 2000;
  /// Seed for the jitter stream: the same seed replays the same backoff
  /// schedule, keeping chaos runs deterministic end to end.
  std::uint64_t jitter_seed = 0;
  /// Wall-clock budget across all attempts, connects, and backoffs.
  std::uint64_t overall_deadline_ms = 120'000;
  /// Per-attempt I/O deadline (connect and each round trip).
  int attempt_timeout_ms = 10'000;
  /// RESULT poll cadence while a submitted job runs.
  int poll_ms = 20;
};

/// What the healing cost: exposed by the loadgen as attempt counts and
/// retry amplification.
struct RetryStats {
  std::uint64_t attempts = 0;        ///< submit attempts (first one included)
  std::uint64_t reconnects = 0;      ///< connections (re)established
  std::uint64_t transport_errors = 0;  ///< socket/timeout failures healed
  std::uint64_t corrupted_frames = 0;  ///< kCorrupted checksum mismatches seen
  std::uint64_t backoff_ms = 0;      ///< total time spent backing off
};

/// Terminal failure of the retry loop.  `retryable_cause()` says whether
/// the last error was transport-level (budget ran out mid-healing) or a
/// daemon verdict that retrying cannot change.
class RetryError : public std::runtime_error {
 public:
  RetryError(const std::string& message, bool retryable_cause)
      : std::runtime_error(message), retryable_cause_(retryable_cause) {}

  bool retryable_cause() const { return retryable_cause_; }

 private:
  bool retryable_cause_;
};

class RetryingClient {
 public:
  RetryingClient(std::string host, std::uint16_t port, RetryPolicy policy);

  /// Submits the job and polls until its RESULT is ready, healing
  /// transport failures along the way.  Throws RetryError when the
  /// budget is exhausted or the daemon's verdict is final; rethrows
  /// ProtocolError only for non-retryable protocol verdicts
  /// (kBadRequest on a malformed submit).
  ResultReply submit_and_wait(SubmitRequest request);

  const RetryStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

  /// The wrapped raw client, for callers that need one-shot calls
  /// (stats/shutdown) on the same connection between healed submits.
  Client& raw() { return client_; }

 private:
  /// Backoff for `attempt` (1-based) with seeded jitter in [0.5, 1.0]×,
  /// clamped to both the policy cap and the remaining overall budget.
  std::uint64_t backoff_for(int attempt, std::uint64_t remaining_ms);
  void ensure_connected(std::uint64_t remaining_ms);

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  Rng jitter_;
  Client client_;
  RetryStats stats_;
};

}  // namespace congestbc::service
