// The algorithm portfolio: every way this repository can compute
// betweenness centrality, behind one interface (DESIGN.md §15).
//
// A BcBackend owns one algorithm: the paper's exact distributed
// pipeline, the Crescenzi–Fraigniaud–Paz fast algorithm, directed BC
// via Pontecorvi–Ramachandran accumulation, or Bader-style sampled
// approximation.  Callers — the CLI, the serving daemon, the benches —
// pick a backend by BackendId (algo/bc_pipeline.hpp; it lives there so
// it can enter options_fingerprint) and dispatch through
// run_portfolio(); the daemon's admission control additionally resolves
// `backend=auto` per job under load (resolve_auto_backend).
//
// Every backend returns the same RunOutcome shape as the watchdogged
// runner, so everything downstream — result cache, wire encoding,
// report JSON — is backend-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "core/runner.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace congestbc::portfolio {

/// What a backend can do — the registry's contract with admission
/// control and with the test matrix.
struct BackendCapabilities {
  bool undirected_input = false;
  bool directed_input = false;
  /// Deterministic exact results (within the Theorem-1 soft-float
  /// envelope for the distributed pipeline); false = approximate with a
  /// stated error bound.
  bool exact = true;
  /// Runs on the CONGEST simulator engines (EngineKind honored,
  /// bit-identical across engines/threads); false = round-accounted
  /// simulation with its own cost model.
  bool simulator_engines = false;
  /// One-line when-to-use guidance (README table, `backends` listings).
  std::string_view summary;
};

/// Input of one portfolio run: exactly one of `graph` (undirected
/// backends) or `digraph` (directed backend) is set.  Both must outlive
/// the call.
struct BackendRequest {
  const Graph* graph = nullptr;
  const Digraph* digraph = nullptr;
  DistributedBcOptions options;
};

/// One pluggable betweenness algorithm.
class BcBackend {
 public:
  virtual ~BcBackend() = default;

  virtual BackendId id() const = 0;
  /// Stable lowercase name, equal to to_string(id()).
  virtual std::string_view name() const = 0;
  virtual BackendCapabilities capabilities() const = 0;

  /// Runs the algorithm.  Throws PreconditionError on an input the
  /// backend does not support (wrong graph kind, bad options); every
  /// runtime failure comes back as a classified RunOutcome instead.
  virtual RunOutcome run(const BackendRequest& request) const = 0;
};

/// The process-wide backend table.  All four backends register on first
/// use; the registry is immutable afterwards (lookups are lock-free).
class BackendRegistry {
 public:
  static const BackendRegistry& instance();

  /// nullptr when `id` is kAuto or unknown — auto is a serve-time
  /// placeholder, not an algorithm.
  const BcBackend* find(BackendId id) const;
  const BcBackend* find(std::string_view name) const;

  /// Registration order: paper_exact, cfp, directed, sampled.
  const std::vector<const BcBackend*>& all() const { return views_; }

 private:
  BackendRegistry();

  std::vector<std::unique_ptr<BcBackend>> owned_;
  std::vector<const BcBackend*> views_;
};

/// Parses a CLI/wire backend name ("auto", "paper_exact", "cfp",
/// "directed", "sampled"); nullopt on anything else.
std::optional<BackendId> parse_backend(std::string_view name);

/// The serve-time speed/accuracy policy, shared by the daemon's
/// admission control and the CLI: `auto` runs the paper's exact
/// algorithm, unless the server is under pressure (queue depth or
/// deadline risk — the caller's judgment), in which case it degrades
/// gracefully to the sampled approximation.  Non-auto requests are
/// never overridden.
BackendId resolve_auto_backend(BackendId requested, bool under_pressure);

/// The sampled backend's source budget: `requested` clamped to [1, n],
/// or the default 4·ceil(sqrt(n)) (clamped to [16, n]) when 0.  The
/// default is the latency-first point (~4% of sources on a 10k-node
/// graph: ~10% max BC error at ~35× the exact backend's speed); a 25%
/// budget lands well under 5% max error while staying >5× faster —
/// BENCH_portfolio.json pins both ends of the curve.
std::uint32_t resolve_sample_budget(NodeId num_nodes, std::uint32_t requested);

/// Hoeffding/union-bound error guarantee of the sampled backend: with
/// probability >= 1 - delta, every node's absolute BC error is at most
/// n·(n-2)·sqrt(ln(2n/delta) / (2·samples)) (per-source dependencies
/// lie in [0, n-2]; the estimator scales by n/samples).  Deliberately
/// conservative; tests/portfolio_test.cpp validates observed errors
/// against it across seeds.
double sampled_error_bound(NodeId num_nodes, std::uint32_t samples,
                           double delta);

/// Dispatches to the backend named by request.options.backend.  The
/// caller must have resolved kAuto first; kDirected requires
/// request.digraph, every other backend requires request.graph.
RunOutcome run_portfolio(const BackendRequest& request);

}  // namespace congestbc::portfolio
