// Backend 4: Bader-style sampled-source approximation.
//
// Runs the SAME distributed pipeline as paper_exact, but only from a
// random subset of sources (drawn deterministically from approx_seed)
// with the dependency sums scaled by N/|sources| — the Brandes–Pich
// estimator the paper cites in Section II, executed distributedly.
// Fewer sources means fewer counting waves, so rounds and wall-clock
// shrink roughly with the sample fraction; the price is the stochastic
// error bound in sampled_error_bound().
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "portfolio/backends_impl.hpp"

namespace congestbc::portfolio {

namespace {

class SampledBackend final : public BcBackend {
 public:
  BackendId id() const override { return BackendId::kSampled; }
  std::string_view name() const override { return "sampled"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.undirected_input = true;
    caps.directed_input = false;
    caps.exact = false;
    caps.simulator_engines = true;
    caps.summary =
        "sampled-source approximation on the distributed pipeline; "
        "tunable budget, Hoeffding error bound, the auto-downgrade target";
    return caps;
  }

  RunOutcome run(const BackendRequest& request) const override {
    CBC_EXPECTS(request.graph != nullptr,
                "sampled backend runs on undirected graphs");
    const NodeId n = request.graph->num_nodes();
    DistributedBcOptions options = request.options;
    CBC_EXPECTS(!options.sources.has_value(),
                "sampled backend draws its own sources; pass "
                "approx_samples/approx_seed instead of a mask");
    const std::uint32_t budget =
        resolve_sample_budget(n, options.approx_samples);
    Rng rng(options.approx_seed);
    std::vector<bool> mask(n, false);
    for (const std::uint64_t s : rng.sample_without_replacement(n, budget)) {
      mask[static_cast<std::size_t>(s)] = true;
    }
    options.sources = std::move(mask);
    options.scale_by_sources = true;  // the estimator's N/|S| scaling
    return run_bc_with_watchdog(*request.graph, options);
  }
};

}  // namespace

std::unique_ptr<BcBackend> make_sampled_backend() {
  return std::make_unique<SampledBackend>();
}

}  // namespace congestbc::portfolio
