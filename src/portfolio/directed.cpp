// Backend 3: directed betweenness centrality, following the
// accumulation structure of Pontecorvi–Ramachandran, "Distributed
// Algorithms for Directed Betweenness Centrality and All Pairs Shortest
// Paths" (arXiv:1805.08124).
//
// On an unweighted digraph their scheme specializes to: a forward BFS
// wave per source over the OUT-arcs (distances + path counts), then a
// backward accumulation wave over the IN-arcs of each shortest-path
// DAG, with dependencies summed over ordered pairs — no halving, unlike
// the undirected convention, because (s, t) and (t, s) are genuinely
// different journeys.  Waves pipeline across sources exactly as in the
// CFP schedule, giving the same O(n + D) round shape.
//
// Unreachable pairs contribute zero dependency (the digraph must be
// weakly connected, not strongly).  Validated against the centralized
// directed_brandes_bc checker in the portfolio sweep.
#include <algorithm>
#include <queue>

#include "common/assert.hpp"
#include "portfolio/backends_impl.hpp"

namespace congestbc::portfolio {

namespace {

constexpr std::uint32_t kUnreached = ~std::uint32_t{0};

std::uint64_t ceil_log2(std::uint64_t n) {
  std::uint64_t bits = 0;
  while ((1ull << bits) < n) {
    ++bits;
  }
  return bits;
}

class DirectedBackend final : public BcBackend {
 public:
  BackendId id() const override { return BackendId::kDirected; }
  std::string_view name() const override { return "directed"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.undirected_input = false;
    caps.directed_input = true;
    caps.exact = true;
    caps.simulator_engines = false;
    caps.summary =
        "directed BC (Pontecorvi-Ramachandran accumulation) over "
        "out-arc BFS / in-arc dependency waves; ordered-pair convention";
    return caps;
  }

  RunOutcome run(const BackendRequest& request) const override {
    const Digraph& g = *request.digraph;
    const DistributedBcOptions& options = request.options;
    const NodeId n = g.num_nodes();
    CBC_EXPECTS(n >= 1, "empty graph");
    CBC_EXPECTS(is_weakly_connected(g),
                "directed backend requires a weakly connected digraph");
    CBC_EXPECTS(options.faults.empty(),
                "directed backend does not support fault injection");
    CBC_EXPECTS(!options.reliable_transport,
                "directed backend does not support the reliable transport");
    CBC_EXPECTS(options.checkpoint_every == 0 && options.resume_from.empty() &&
                    options.halt_at_round == 0,
                "directed backend does not support checkpoint/resume");
    CBC_EXPECTS(options.cut_edges.empty(),
                "directed backend does not support cut accounting");
    CBC_EXPECTS(!options.counting_only,
                "directed backend does not support counting-only mode");

    const std::vector<bool> is_source =
        options.sources.value_or(std::vector<bool>(n, true));
    CBC_EXPECTS(is_source.size() == n, "sources mask must have size N");
    const std::vector<bool> is_target =
        options.targets.value_or(std::vector<bool>{});
    CBC_EXPECTS(is_target.empty() || is_target.size() == n,
                "targets mask must have size N");
    const auto counts_as_target = [&](NodeId v) {
      return is_target.empty() || is_target[v];
    };

    RunOutcome outcome;
    DistributedBcResult& result = outcome.result;
    result.betweenness.assign(n, 0.0);
    result.closeness.assign(n, 0.0);
    result.graph_centrality.assign(n, 0.0);
    result.stress.assign(n, 0.0L);
    result.eccentricities.assign(n, 0);
    result.bfs_start_rounds.assign(n, 0);
    outcome.completion.assign(n, NodeCompletion{});

    std::uint32_t num_sources = 0;
    for (NodeId v = 0; v < n; ++v) {
      num_sources += is_source[v] ? 1u : 0u;
    }
    CBC_EXPECTS(num_sources >= 1, "no sources selected");

    std::vector<std::uint32_t> dist(n);
    std::vector<double> sigma(n);
    std::vector<double> delta(n);
    std::vector<long double> lambda(n);
    std::vector<NodeId> order;
    order.reserve(n);
    std::uint32_t max_depth = 0;
    std::uint64_t forward_messages = 0;
    std::uint64_t backward_messages = 0;
    std::uint32_t sources_done = 0;

    for (NodeId s = 0; s < n; ++s) {
      if (!is_source[s]) {
        continue;
      }
      if (options.halt_request != nullptr &&
          options.halt_request->load(std::memory_order_relaxed)) {
        result.suspended = true;
        break;
      }
      result.bfs_start_rounds[s] = sources_done + 1;

      // Forward wave over out-arcs: d(s, .) and sigma(s, .).
      std::fill(dist.begin(), dist.end(), kUnreached);
      std::fill(sigma.begin(), sigma.end(), 0.0);
      order.clear();
      dist[s] = 0;
      sigma[s] = 1.0;
      std::queue<NodeId> queue;
      queue.push(s);
      while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop();
        order.push_back(v);
        forward_messages += g.out_degree(v);
        for (const NodeId w : g.out_neighbors(v)) {
          if (dist[w] == kUnreached) {
            dist[w] = dist[v] + 1;
            queue.push(w);
          }
          if (dist[w] == dist[v] + 1) {
            sigma[w] += sigma[v];
          }
        }
      }

      // s's own BFS row is the out-distance vector d(s, .): closeness
      // and eccentricity of s come from it directly.
      std::uint64_t row_sum = 0;
      std::uint32_t row_max = 0;
      for (const NodeId v : order) {
        if (v != s) {
          row_sum += dist[v];
          row_max = std::max(row_max, dist[v]);
        }
      }
      if (row_sum > 0) {
        result.closeness[s] = 1.0 / static_cast<double>(row_sum);
      }
      result.eccentricities[s] = row_max;
      if (row_max > 0) {
        result.graph_centrality[s] = 1.0 / static_cast<double>(row_max);
      }
      result.diameter = std::max(result.diameter, row_max);
      max_depth = std::max(max_depth, row_max);

      // Backward wave over in-arcs: predecessors of w on shortest paths
      // from s are the in-neighbors one level closer.
      std::fill(delta.begin(), delta.end(), 0.0);
      std::fill(lambda.begin(), lambda.end(), 0.0L);
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId w = *it;
        const double own = counts_as_target(w) && w != s ? 1.0 : 0.0;
        for (const NodeId v : g.in_neighbors(w)) {
          if (dist[v] != kUnreached && dist[v] + 1 == dist[w]) {
            delta[v] += sigma[v] / sigma[w] * (own + delta[w]);
            lambda[v] += static_cast<long double>(own) + lambda[w];
            ++backward_messages;
          }
        }
        if (w != s) {
          result.betweenness[w] += delta[w];
          result.stress[w] += static_cast<long double>(sigma[w]) * lambda[w];
        }
      }
      ++sources_done;
    }

    const double scale =
        options.scale_by_sources
            ? static_cast<double>(n) / static_cast<double>(num_sources)
            : 1.0;
    for (NodeId v = 0; v < n; ++v) {
      // Ordered-pair convention: no halving (options.halve is an
      // undirected-only knob; see ALGORITHM.md).
      result.betweenness[v] *= scale;
      result.stress[v] *= static_cast<long double>(scale);
    }

    const std::uint64_t depth = max_depth;
    result.rounds = 2ull * (sources_done > 0 ? sources_done - 1 : 0) +
                    2ull * depth + 4;
    result.last_finish_round = result.rounds;
    result.metrics.rounds = result.rounds;
    result.metrics.total_logical_messages =
        forward_messages + backward_messages;
    result.metrics.total_physical_messages =
        forward_messages + backward_messages;
    result.metrics.total_bits =
        (forward_messages + backward_messages) * (ceil_log2(n + 1) + 64);
    result.max_node_state_bytes =
        n * (sizeof(std::uint32_t) + sizeof(double));

    outcome.nodes_finished = result.suspended ? 0 : n;
    for (NodeId v = 0; v < n; ++v) {
      outcome.completion[v].done = !result.suspended;
      outcome.completion[v].sources_counted = sources_done;
    }
    outcome.status =
        result.suspended ? RunStatus::kSuspended : RunStatus::kComplete;
    if (result.suspended) {
      outcome.detail = "halted at source boundary by halt_request";
    }
    return outcome;
  }
};

}  // namespace

std::unique_ptr<BcBackend> make_directed_backend() {
  return std::make_unique<DirectedBackend>();
}

}  // namespace congestbc::portfolio
