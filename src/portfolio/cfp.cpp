// Backend 2: Crescenzi–Fraigniaud–Paz "Simple and Fast Distributed
// Computation of Betweenness Centrality" (arXiv:2001.08108).
//
// CFP's observation: in CONGEST, n pipelined BFS waves — one per source,
// staggered by rank — compute every (distance, path-count) pair in
// O(n + D) rounds, and a second pipelined sweep runs Brandes'
// dependency accumulation backwards over each BFS DAG in another
// O(n + D).  No soft-float wire compression, no aggregation schedule:
// a node forwards one (dist, sigma) record per source, then one delta
// record per DAG arc.
//
// This file is a deliberately INDEPENDENT implementation — it shares no
// code with BcProgram or the simulator engines — with an explicit round
// and message cost model of the pipelined schedule.  The differential
// sweep (tests/portfolio_sweep_test.cpp) checks it against both
// centralized Brandes (tight tolerance; both use doubles) and the
// paper_exact backend (within the Theorem-1 soft-float envelope, which
// bounds how far paper_exact may drift from the exact value).
#include <algorithm>
#include <queue>

#include "common/assert.hpp"
#include "graph/properties.hpp"
#include "portfolio/backends_impl.hpp"

namespace congestbc::portfolio {

namespace {

constexpr std::uint32_t kUnreached = ~std::uint32_t{0};

std::uint64_t ceil_log2(std::uint64_t n) {
  std::uint64_t bits = 0;
  while ((1ull << bits) < n) {
    ++bits;
  }
  return bits;
}

class CfpBackend final : public BcBackend {
 public:
  BackendId id() const override { return BackendId::kCfp; }
  std::string_view name() const override { return "cfp"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.undirected_input = true;
    caps.directed_input = false;
    caps.exact = true;
    caps.simulator_engines = false;
    caps.summary =
        "Crescenzi-Fraigniaud-Paz pipelined-BFS BC in O(n + D) rounds; "
        "independent cross-check of paper_exact, double arithmetic";
    return caps;
  }

  RunOutcome run(const BackendRequest& request) const override {
    const Graph& g = *request.graph;
    const DistributedBcOptions& options = request.options;
    const NodeId n = g.num_nodes();
    CBC_EXPECTS(n >= 1, "empty graph");
    CBC_EXPECTS(is_connected(g), "CFP backend requires a connected graph");
    // The CFP round model has no fault/checkpoint story — those knobs
    // belong to the simulator engines.  Reject loudly rather than
    // silently computing something else.
    CBC_EXPECTS(options.faults.empty(),
                "cfp backend does not support fault injection");
    CBC_EXPECTS(!options.reliable_transport,
                "cfp backend does not support the reliable transport");
    CBC_EXPECTS(options.checkpoint_every == 0 && options.resume_from.empty() &&
                    options.halt_at_round == 0,
                "cfp backend does not support checkpoint/resume");
    CBC_EXPECTS(options.cut_edges.empty(),
                "cfp backend does not support cut accounting");
    CBC_EXPECTS(!options.counting_only,
                "cfp backend does not support counting-only mode");

    const std::vector<bool> is_source =
        options.sources.value_or(std::vector<bool>(n, true));
    CBC_EXPECTS(is_source.size() == n, "sources mask must have size N");
    const std::vector<bool> is_target =
        options.targets.value_or(std::vector<bool>{});
    CBC_EXPECTS(is_target.empty() || is_target.size() == n,
                "targets mask must have size N");
    const auto counts_as_target = [&](NodeId v) {
      return is_target.empty() || is_target[v];
    };

    RunOutcome outcome;
    DistributedBcResult& result = outcome.result;
    result.betweenness.assign(n, 0.0);
    result.closeness.assign(n, 0.0);
    result.graph_centrality.assign(n, 0.0);
    result.stress.assign(n, 0.0L);
    result.eccentricities.assign(n, 0);
    result.bfs_start_rounds.assign(n, 0);
    outcome.completion.assign(n, NodeCompletion{});

    std::uint32_t num_sources = 0;
    for (NodeId v = 0; v < n; ++v) {
      num_sources += is_source[v] ? 1u : 0u;
    }
    CBC_EXPECTS(num_sources >= 1, "no sources selected");

    std::vector<std::uint64_t> closeness_sum(n, 0);
    std::vector<std::uint32_t> dist(n);
    std::vector<double> sigma(n);
    std::vector<double> delta(n);
    std::vector<long double> lambda(n);
    std::vector<NodeId> order;
    order.reserve(n);
    std::uint32_t max_depth = 0;
    std::uint64_t forward_messages = 0;
    std::uint64_t backward_messages = 0;
    std::uint32_t sources_done = 0;

    for (NodeId s = 0; s < n; ++s) {
      if (!is_source[s]) {
        continue;
      }
      if (options.halt_request != nullptr &&
          options.halt_request->load(std::memory_order_relaxed)) {
        // Cooperative drain: stop cleanly at a source boundary, exactly
        // like the simulator stops at a round boundary.
        result.suspended = true;
        break;
      }
      // Pipelined schedule: wave #k departs at round k (source rank).
      result.bfs_start_rounds[s] = sources_done + 1;

      // Forward wave: BFS distances + path counts.
      std::fill(dist.begin(), dist.end(), kUnreached);
      std::fill(sigma.begin(), sigma.end(), 0.0);
      order.clear();
      dist[s] = 0;
      sigma[s] = 1.0;
      std::queue<NodeId> queue;
      queue.push(s);
      while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop();
        order.push_back(v);
        // One (dist, sigma) announcement over every incident edge.
        forward_messages += g.degree(v);
        for (const NodeId w : g.neighbors(v)) {
          if (dist[w] == kUnreached) {
            dist[w] = dist[v] + 1;
            queue.push(w);
          }
          if (dist[w] == dist[v] + 1) {
            sigma[w] += sigma[v];
          }
        }
      }

      // Backward wave: Brandes dependency (and stress count) recursion
      // over the BFS DAG, deepest level first.
      std::fill(delta.begin(), delta.end(), 0.0);
      std::fill(lambda.begin(), lambda.end(), 0.0L);
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId w = *it;
        const double own = counts_as_target(w) && w != s ? 1.0 : 0.0;
        for (const NodeId v : g.neighbors(w)) {
          if (dist[v] + 1 == dist[w]) {  // v is a DAG predecessor of w
            delta[v] += sigma[v] / sigma[w] * (own + delta[w]);
            lambda[v] +=
                static_cast<long double>(own) + lambda[w];
            ++backward_messages;
          }
        }
        if (w != s) {
          result.betweenness[w] += delta[w];
          result.stress[w] += static_cast<long double>(sigma[w]) * lambda[w];
        }
        closeness_sum[w] += dist[w];
        result.eccentricities[w] =
            std::max(result.eccentricities[w], dist[w]);
        max_depth = std::max(max_depth, dist[w]);
      }
      ++sources_done;
    }

    const double scale =
        options.scale_by_sources
            ? static_cast<double>(n) / static_cast<double>(num_sources)
            : 1.0;
    const double halve = options.halve ? 0.5 : 1.0;
    for (NodeId v = 0; v < n; ++v) {
      result.betweenness[v] *= scale * halve;
      result.stress[v] *= static_cast<long double>(scale) *
                          static_cast<long double>(halve);
      if (closeness_sum[v] > 0) {
        result.closeness[v] = 1.0 / static_cast<double>(closeness_sum[v]);
      }
      if (result.eccentricities[v] > 0) {
        result.graph_centrality[v] =
            1.0 / static_cast<double>(result.eccentricities[v]);
      }
      result.diameter = std::max(result.diameter, result.eccentricities[v]);
    }

    // Cost model of the pipelined schedule: the last forward wave
    // departs at round S-1 and completes D rounds later; the backward
    // sweep mirrors it, plus a constant for the start/finish beacons.
    const std::uint64_t depth = max_depth;
    result.rounds = 2ull * (sources_done > 0 ? sources_done - 1 : 0) +
                    2ull * depth + 4;
    result.last_finish_round = result.rounds;
    result.metrics.rounds = result.rounds;
    result.metrics.total_logical_messages =
        forward_messages + backward_messages;
    result.metrics.total_physical_messages =
        forward_messages + backward_messages;
    // One record per message: a distance (log n bits) plus one IEEE
    // double for sigma or delta.
    result.metrics.total_bits =
        (forward_messages + backward_messages) * (ceil_log2(n + 1) + 64);
    result.max_node_state_bytes =
        n * (sizeof(std::uint32_t) + sizeof(double));

    outcome.nodes_finished = result.suspended ? 0 : n;
    for (NodeId v = 0; v < n; ++v) {
      outcome.completion[v].done = !result.suspended;
      outcome.completion[v].sources_counted = sources_done;
    }
    outcome.status =
        result.suspended ? RunStatus::kSuspended : RunStatus::kComplete;
    if (result.suspended) {
      outcome.detail = "halted at source boundary by halt_request";
    }
    return outcome;
  }
};

}  // namespace

std::unique_ptr<BcBackend> make_cfp_backend() {
  return std::make_unique<CfpBackend>();
}

}  // namespace congestbc::portfolio
