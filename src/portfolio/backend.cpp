#include "portfolio/backend.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "portfolio/backends_impl.hpp"

namespace congestbc::portfolio {

BackendRegistry::BackendRegistry() {
  owned_.push_back(make_paper_exact_backend());
  owned_.push_back(make_cfp_backend());
  owned_.push_back(make_directed_backend());
  owned_.push_back(make_sampled_backend());
  views_.reserve(owned_.size());
  for (const auto& backend : owned_) {
    views_.push_back(backend.get());
  }
}

const BackendRegistry& BackendRegistry::instance() {
  static const BackendRegistry registry;
  return registry;
}

const BcBackend* BackendRegistry::find(BackendId id) const {
  for (const BcBackend* backend : views_) {
    if (backend->id() == id) {
      return backend;
    }
  }
  return nullptr;
}

const BcBackend* BackendRegistry::find(std::string_view name) const {
  for (const BcBackend* backend : views_) {
    if (backend->name() == name) {
      return backend;
    }
  }
  return nullptr;
}

std::optional<BackendId> parse_backend(std::string_view name) {
  if (name == "auto") {
    return BackendId::kAuto;
  }
  if (const BcBackend* backend = BackendRegistry::instance().find(name)) {
    return backend->id();
  }
  return std::nullopt;
}

BackendId resolve_auto_backend(BackendId requested, bool under_pressure) {
  if (requested != BackendId::kAuto) {
    return requested;
  }
  return under_pressure ? BackendId::kSampled : BackendId::kPaperExact;
}

std::uint32_t resolve_sample_budget(NodeId num_nodes,
                                    std::uint32_t requested) {
  CBC_EXPECTS(num_nodes >= 1, "empty graph");
  if (requested != 0) {
    return requested < num_nodes ? requested : num_nodes;
  }
  const auto root = static_cast<std::uint32_t>(
      std::ceil(4.0 * std::sqrt(static_cast<double>(num_nodes))));
  const std::uint32_t floor = root < 16 ? 16 : root;
  return floor < num_nodes ? floor : num_nodes;
}

double sampled_error_bound(NodeId num_nodes, std::uint32_t samples,
                           double delta) {
  CBC_EXPECTS(samples >= 1, "need at least one sample");
  CBC_EXPECTS(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
  const auto n = static_cast<double>(num_nodes);
  if (num_nodes <= 2) {
    return 0.0;  // no interior pairs, BC is identically zero
  }
  // Hoeffding on the mean of `samples` iid per-source dependencies in
  // [0, n-2], scaled by n, with a union bound over the n nodes.
  return n * (n - 2.0) *
         std::sqrt(std::log(2.0 * n / delta) /
                   (2.0 * static_cast<double>(samples)));
}

RunOutcome run_portfolio(const BackendRequest& request) {
  const BackendId id = request.options.backend;
  CBC_EXPECTS(id != BackendId::kAuto,
              "backend=auto must be resolved before dispatch "
              "(resolve_auto_backend)");
  const BcBackend* backend = BackendRegistry::instance().find(id);
  CBC_EXPECTS(backend != nullptr, "unknown backend id");
  const BackendCapabilities caps = backend->capabilities();
  if (request.digraph != nullptr) {
    CBC_EXPECTS(request.graph == nullptr,
                "pass exactly one of graph / digraph");
    CBC_EXPECTS(caps.directed_input,
                std::string(backend->name()) +
                    " backend does not accept directed graphs");
  } else {
    CBC_EXPECTS(request.graph != nullptr, "request carries no graph");
    CBC_EXPECTS(caps.undirected_input,
                std::string(backend->name()) +
                    " backend requires a directed graph");
  }
  return backend->run(request);
}

}  // namespace congestbc::portfolio
