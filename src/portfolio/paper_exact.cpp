// Backend 1: the paper's exact distributed algorithm — a thin adapter
// over the watchdogged runner.  This is the pre-portfolio behavior,
// bit-for-bit: the options pass straight through, so every engine,
// fault, checkpoint, and halt knob keeps working unchanged.
#include "common/assert.hpp"
#include "portfolio/backends_impl.hpp"

namespace congestbc::portfolio {

namespace {

class PaperExactBackend final : public BcBackend {
 public:
  BackendId id() const override { return BackendId::kPaperExact; }
  std::string_view name() const override { return "paper_exact"; }

  BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.undirected_input = true;
    caps.directed_input = false;
    caps.exact = true;
    caps.simulator_engines = true;
    caps.summary =
        "the paper's O(N)-round exact distributed algorithm; the default "
        "and the reference for everything else";
    return caps;
  }

  RunOutcome run(const BackendRequest& request) const override {
    CBC_EXPECTS(request.graph != nullptr,
                "paper_exact runs on undirected graphs");
    return run_bc_with_watchdog(*request.graph, request.options);
  }
};

}  // namespace

std::unique_ptr<BcBackend> make_paper_exact_backend() {
  return std::make_unique<PaperExactBackend>();
}

}  // namespace congestbc::portfolio
