// Internal factory seams between the registry and the four backend
// translation units.  Not part of the portfolio's public surface —
// include backend.hpp instead.
#pragma once

#include <memory>

#include "portfolio/backend.hpp"

namespace congestbc::portfolio {

std::unique_ptr<BcBackend> make_paper_exact_backend();
std::unique_ptr<BcBackend> make_cfp_backend();
std::unique_ptr<BcBackend> make_directed_backend();
std::unique_ptr<BcBackend> make_sampled_backend();

}  // namespace congestbc::portfolio
