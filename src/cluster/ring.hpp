// Consistent-hash ring of worker identities (DESIGN.md §16).
//
// The ring is what makes fingerprint routing *stable*: each worker owns
// a set of virtual points on a 64-bit circle, a job's route fingerprint
// lands at a point, and the first worker point at-or-after it (wrapping)
// owns the job.  Because every point position is a pure hash of
// (worker_id, vnode index), the mapping is deterministic across
// insertion orders and across router restarts — the property the
// per-worker result cache and in-flight coalescing depend on: identical
// submits always meet on the same worker while membership holds.
//
// Adding or removing one worker moves only the keys in the arcs its
// points cover (~1/N of the space with enough vnodes), which is why a
// health-check eviction does not stampede every cache.
//
// Not internally synchronized; the router mutates it from its io thread.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace congestbc::cluster {

class HashRing {
 public:
  /// More vnodes = smoother key distribution at the cost of a larger
  /// point map; 64 keeps the max/min owner-share ratio near 1 for the
  /// single-digit worker counts a router tier runs.
  explicit HashRing(unsigned vnodes_per_worker = 64);

  /// Inserts a worker's points; false (and no change) when present.
  bool add(const std::string& worker_id);
  /// Removes a worker's points; false when absent.
  bool remove(const std::string& worker_id);
  bool contains(const std::string& worker_id) const;

  /// Distinct workers in the ring (not points).
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// The worker owning `fingerprint`; "" on an empty ring.
  std::string owner(std::uint64_t fingerprint) const;

  /// Failover order for `fingerprint`: the owner, then each successor in
  /// ring order, distinct workers only, at most `count` entries.
  /// `exclude` (e.g. a migration's origin worker) is skipped entirely —
  /// a transplant must never be routed back to the worker draining it.
  std::vector<std::string> preference(std::uint64_t fingerprint,
                                      std::size_t count,
                                      const std::string& exclude = "") const;

  /// Member ids, sorted (deterministic iteration for health checks and
  /// cluster-wide fan-outs).
  std::vector<std::string> workers() const;

 private:
  unsigned vnodes_;
  /// Ring position -> owning worker.  std::map: owner() is a lower_bound.
  std::map<std::uint64_t, std::string> points_;
  std::set<std::string> members_;
};

}  // namespace congestbc::cluster
