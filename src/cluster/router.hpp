// The cluster front-end (DESIGN.md §16): one congestbc_router speaks
// CBCP v6 to clients and the same protocol over worker links to N
// congestbcd workers.
//
//   clients ──CBCP──▶ router io thread ──CBCP──▶ worker daemons
//                       │ consistent-hash ring (cluster/ring.hpp)
//                       │ job table: router id ⇄ (worker, remote id)
//                       │ health checks, eviction, rejoin
//                       └ migration forwarding (drain transplants)
//
// Routing: every SUBMIT hashes its result-determining fields into a
// route fingerprint (graph text, backend, approximation params, fault
// plan, …; stream-addressed work hashes its namespace so MUTATE and
// stream submits colocate).  The ring maps that hash to a home worker,
// so identical submits always meet on the same daemon — its result
// cache and in-flight coalescing stay exactly as hot as in the
// single-daemon deployment.  A draining home hands over to its ring
// successor; a busy home spills over the preference order.
//
// Cross-worker cache: when the home *queues* a fresh execution, the
// router first probes the other workers by authoritative fingerprint
// (LOOKUP).  A hit cancels the queued job and serves the cached bytes —
// byte-identical, because workers cache encoded blocks.
//
// Membership: workers JOIN (idempotent heartbeat) and LEAVE; the router
// also health-checks links round-robin and evicts a worker after N
// consecutive failures.  A later JOIN heals the eviction.
//
// Migration: a draining worker MIGRATEs its suspended jobs here; the
// router forwards each transplant to the fingerprint's ring successor
// (excluding the origin) and repoints its job table, so clients polling
// a router job id never notice the job changed hosts.
//
// The router holds no result state of its own beyond blocks it decided
// to serve (cross-worker hits, post-eviction lookups): workers stay the
// single source of truth for execution and caching.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/ring.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"

namespace congestbc::cluster {

struct RouterConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is Router::port() after start().
  std::uint16_t port = 0;
  /// Static seed list of worker "host:port" addresses; workers may also
  /// (or instead) JOIN dynamically.
  std::vector<std::string> workers;
  /// Health-check cadence; each tick probes one active worker
  /// round-robin with a short STATS call.  0 disables probing (JOIN
  /// heartbeats and per-call failures still drive membership).
  std::uint64_t health_every_ms = 500;
  /// Consecutive failed probes/calls before a worker is evicted from
  /// the ring.  A JOIN from the worker heals the eviction.
  unsigned eviction_threshold = 3;
  /// Per-call budget on worker links (submits, migrations, results).
  int worker_timeout_ms = 30000;
  /// Budget on health probes — short, so a dead worker cannot stall the
  /// io thread for a full link timeout.
  int health_timeout_ms = 250;
  /// Probe other workers' caches (LOOKUP) before letting a fresh
  /// execution proceed on the home worker.
  bool cross_worker_lookup = true;
  /// How long a job on an unreachable worker keeps answering kQueued
  /// ("migration may be pending") before the router declares it lost.
  /// A draining worker closes its sessions before it MIGRATEs, so polls
  /// racing the handover must not fail the job; a worker that actually
  /// died fails its jobs once this window lapses.
  std::uint64_t migration_grace_ms = 10000;
  /// Virtual points per worker on the ring.
  unsigned ring_vnodes = 64;
  std::uint32_t max_frame_bytes = service::kMaxFramePayloadBytes;
  /// Same write-side backpressure contract as DaemonConfig.
  std::size_t session_out_limit = 64u << 20;
  /// Retained terminal router jobs (served results stay addressable for
  /// re-polls until the cap evicts them oldest-first).
  std::size_t job_retention_limit = 65536;
  /// Router-held result blocks keyed by routing fingerprint (FIFO
  /// evicted beyond this many entries).  0 disables the cache.  With it
  /// on, a submit or poll whose (non-stream) work already produced a
  /// block through this router is answered from router memory without a
  /// worker round trip — what keeps thousands of concurrent pollers
  /// from serializing on the worker links.  Off by default so tests of
  /// the worker-side cache paths see every probe.
  std::size_t result_cache_entries = 0;
};

/// Router-plane counters, readable while serving (Router::stats()).
struct RouterStats {
  std::uint64_t submits_routed = 0;
  std::uint64_t spillovers = 0;       ///< home busy/draining, successor took it
  std::uint64_t cross_worker_hits = 0;
  std::uint64_t migrations_forwarded = 0;
  std::uint64_t migrations_failed = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejoins = 0;          ///< JOINs that healed an eviction
  std::uint64_t link_failures = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t workers_active = 0;
  std::uint64_t jobs_tracked = 0;
  /// Submits answered straight from the router's own result cache.
  std::uint64_t result_cache_hits = 0;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds + listens and seeds the ring with the static worker list.
  /// Throws std::runtime_error on socket failure.
  void start();
  std::uint16_t port() const { return port_; }

  /// Runs the poll loop in the calling thread; returns once drained.
  void serve();
  void serve_async();
  void wait();

  /// Graceful stop (thread-safe, idempotent).
  void request_drain();
  /// Async-signal-safe drain trigger for SIGTERM handlers.
  void notify_signal();

  RouterStats stats() const;

 private:
  enum class LinkState : std::uint8_t { kActive, kDraining, kEvicted, kLeft };

  struct WorkerLink {
    std::string id;    ///< ring identity, canonically "host:port"
    std::string host;  ///< dial-back address
    std::uint16_t port = 0;
    LinkState state = LinkState::kActive;
    unsigned consecutive_failures = 0;
    /// When the link first started failing (epoch = healthy); anchors
    /// the migration grace window for jobs stranded on this worker.
    std::chrono::steady_clock::time_point lost_since{};
    /// Persistent connection, lazily opened, reconnected once per call.
    service::Client client;
  };

  /// One client-visible job: where it actually runs, under which remote
  /// id, plus the block the router decided to serve itself (cross-worker
  /// hit, post-eviction lookup, migrated result held during handover).
  struct RoutedJob {
    std::string worker_id;
    std::uint64_t remote_id = 0;
    std::uint64_t fingerprint = 0;
    /// Routing fingerprint of the submit that created this job; keys the
    /// router result cache (0 when unknown, e.g. migrated-in jobs).
    std::uint64_t route_fp = 0;
    /// Non-stream work whose block may enter the router result cache.
    bool cacheable = false;
    /// Router-held result; when set, STATUS/RESULT are answered locally.
    std::vector<std::uint8_t> held_block;
    std::uint64_t held_block_bits = 0;
    bool held = false;
    bool terminal = false;  ///< retention GC eligibility
  };

  struct Session {
    int fd = -1;
    service::FrameDecoder decoder;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    bool close_after_flush = false;
    bool dead = false;

    Session(int fd_in, std::uint32_t max_frame_bytes)
        : fd(fd_in), decoder(max_frame_bytes) {}
    std::size_t pending_out() const { return out.size() - out_pos; }
  };

  // --- request handling (io thread) ---
  service::Reply dispatch(const service::Request& request);
  service::SubmitReply route_submit(const service::SubmitRequest& request);
  service::MutateReply route_mutate(const service::MutateRequest& request);
  service::StatusReply route_status(std::uint64_t router_job_id);
  service::ResultReply route_result(std::uint64_t router_job_id);
  service::CancelReply route_cancel(std::uint64_t router_job_id);
  service::StatsReply aggregate_stats();
  service::JoinReply handle_join(const service::JoinRequest& request);
  service::LeaveReply handle_leave(const service::LeaveRequest& request);
  service::MigrateReply forward_migrate(const service::MigrateRequest& request);
  service::LookupReply cluster_lookup(std::uint64_t fingerprint);

  // --- worker links ---
  WorkerLink* link(const std::string& worker_id);
  /// One call over a link: lazy connect, one reconnect on socket error.
  /// Socket failures count toward eviction and rethrow; a typed ERROR
  /// reply from the worker rethrows as its ProtocolError untouched.
  service::Reply link_call(WorkerLink& worker, const service::Request& request,
                           int timeout_ms);
  void note_link_failure(WorkerLink& worker);
  void evict_locked(WorkerLink& worker);
  void health_check_tick();
  /// True while a stranded job should keep answering kQueued: the worker
  /// has not cleanly LEFT and its link went dark less than
  /// migration_grace_ms ago (or is merely flapping).
  bool within_migration_grace(const WorkerLink* worker) const;

  /// Active workers in ring preference order for `route_fp`.
  std::vector<WorkerLink*> candidates(std::uint64_t route_fp,
                                      const std::string& exclude = "");

  /// Registers a routed job and returns the router-visible id.
  std::uint64_t track_job(const std::string& worker_id,
                          std::uint64_t remote_id, std::uint64_t fingerprint);
  void mark_terminal(std::uint64_t router_job_id, RoutedJob& job);
  void gc_jobs();

  // --- router result cache (io thread only) ---
  struct CachedBlock {
    std::vector<std::uint8_t> bytes;
    std::uint64_t bits = 0;
  };
  /// Stores a finished block under its routing fingerprint (no-op when
  /// the cache is disabled or the job is not cacheable).
  void cache_result(const RoutedJob& job,
                    const std::vector<std::uint8_t>& bytes,
                    std::uint64_t bits);
  /// nullptr on miss or when the cache is disabled.
  const CachedBlock* cached_result(std::uint64_t route_fp) const;
  /// Adopts a cached block into `job` (held) if one exists; returns
  /// whether STATUS/RESULT can now be answered locally.
  bool adopt_cached_result(RoutedJob& job);

  // --- poll loop internals (mirrors the daemon's session machinery) ---
  void accept_clients();
  void handle_session_input(Session& session);
  void process_session_frames(Session& session);
  void flush_session_output(Session& session);
  void append_reply(Session& session, const service::Reply& reply);
  void finish_drain();

  RouterConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  bool started_ = false;

  std::vector<std::unique_ptr<Session>> sessions_;

  /// Guards the membership/job/stats state below.  The io thread is the
  /// only mutator; the lock exists so stats() (tests, tooling) can read
  /// while serve() runs.
  mutable std::mutex mutex_;
  HashRing ring_;
  /// All workers ever seen, by id — evicted/left links stay here so a
  /// rejoin keeps its identity and in-flight polls can still try them.
  std::map<std::string, std::unique_ptr<WorkerLink>> workers_;
  std::vector<std::string> health_order_;  ///< round-robin probe cursor
  std::size_t health_cursor_ = 0;
  std::uint64_t next_job_id_ = 1;
  std::unordered_map<std::uint64_t, RoutedJob> jobs_;
  std::deque<std::uint64_t> terminal_order_;
  std::unordered_map<std::uint64_t, CachedBlock> result_cache_;
  std::deque<std::uint64_t> result_cache_order_;  ///< FIFO eviction
  RouterStats stats_;

  std::chrono::steady_clock::time_point last_health_;
  std::thread serve_thread_;
};

}  // namespace congestbc::cluster
