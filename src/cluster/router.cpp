#include "cluster/router.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "snapshot/fingerprint.hpp"

namespace congestbc::cluster {

using service::CancelOutcome;
using service::CancelReply;
using service::FramePayload;
using service::JobState;
using service::JoinReply;
using service::JoinRequest;
using service::LeaveReply;
using service::LeaveRequest;
using service::LookupReply;
using service::MigrateKind;
using service::MigrateOutcome;
using service::MigrateReply;
using service::MigrateRequest;
using service::MsgType;
using service::MutateReply;
using service::MutateRequest;
using service::ProtoError;
using service::ProtocolError;
using service::Reply;
using service::Request;
using service::ResultReply;
using service::StatsReply;
using service::StatusReply;
using service::SubmitDisposition;
using service::SubmitReply;
using service::SubmitRequest;

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

bool split_host_port(const std::string& s, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(s.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return false;
  }
  host = s.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

/// The routing key of a SUBMIT: a hash of its result-determining fields.
/// Not the authoritative run fingerprint (only a worker can compute that
/// — it parses the graph and resolves option defaults); it only needs
/// one property: identical submits hash identically, so they always meet
/// on the same home worker, where the real fingerprint coalesces them.
/// Execution hints (threads, engine, legacy_engine) and retry metadata
/// (deadline, attempt) are excluded so variants of the same work
/// colocate.  Stream-addressed work hashes its namespace alone, which
/// pins a namespace — its MUTATEs and all its submits — to one worker.
std::uint64_t route_fingerprint(const SubmitRequest& request) {
  FingerprintBuilder fp;
  if (!request.stream_ns.empty()) {
    static const char kTag[] = "route-stream";
    fp.mix_bytes(kTag, sizeof kTag);
    fp.mix_bytes(request.stream_ns.data(), request.stream_ns.size());
    return fp.value();
  }
  static const char kTag[] = "route-submit";
  fp.mix_bytes(kTag, sizeof kTag);
  fp.mix(static_cast<std::uint64_t>(request.source));
  fp.mix_bytes(request.graph.data(), request.graph.size());
  fp.mix_bool(request.halve);
  fp.mix_bool(request.reliable);
  fp.mix_bytes(request.faults.data(), request.faults.size());
  fp.mix(request.max_rounds);
  fp.mix(request.backend);
  fp.mix(request.samples);
  fp.mix(request.sample_seed);
  return fp.value();
}

std::uint64_t route_fingerprint(const MutateRequest& request) {
  FingerprintBuilder fp;
  static const char kTag[] = "route-stream";
  fp.mix_bytes(kTag, sizeof kTag);
  fp.mix_bytes(request.ns.data(), request.ns.size());
  return fp.value();
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)), ring_(config_.ring_vnodes) {}

Router::~Router() {
  request_drain();
  wait();
  for (auto& session : sessions_) {
    close_fd(session->fd);
  }
  sessions_.clear();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
}

void Router::start() {
  if (started_) {
    return;
  }
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("pipe() failed: " +
                             std::string(std::strerror(errno)));
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::string& address : config_.workers) {
      JoinRequest seed;
      seed.worker_id = address;
      if (!split_host_port(address, seed.host, seed.port)) {
        throw std::runtime_error("bad worker address: " + address);
      }
      (void)handle_join(seed);
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    throw std::runtime_error("bind() failed: " +
                             std::string(std::strerror(errno)));
  }
  // The router fronts the whole tier: a cluster loadgen opens a thousand
  // client sockets in one burst, and a backlog shorter than that burst
  // drops SYNs into retransmit purgatory on a busy box.
  if (::listen(listen_fd_, 4096) != 0) {
    throw std::runtime_error("listen() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
  last_health_ = std::chrono::steady_clock::now();
  started_ = true;
}

void Router::serve_async() {
  serve_thread_ = std::thread([this] { serve(); });
}

void Router::wait() {
  if (serve_thread_.joinable()) {
    serve_thread_.join();
  }
}

void Router::request_drain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Router::notify_signal() {
  drain_requested_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'd';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

RouterStats Router::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RouterStats s = stats_;
  s.workers_active = 0;
  for (const auto& [id, worker] : workers_) {
    if (worker->state == LinkState::kActive) {
      ++s.workers_active;
    }
  }
  s.jobs_tracked = jobs_.size();
  return s;
}

// --------------------------------------------------------- poll loop

void Router::serve() {
  std::vector<pollfd> fds;
  while (true) {
    fds.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    int listen_idx = -1;
    if (!draining_ && listen_fd_ >= 0) {
      listen_idx = static_cast<int>(fds.size());
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    }
    const std::size_t base = fds.size();
    for (const auto& session : sessions_) {
      short events = 0;
      if (!session->close_after_flush &&
          session->pending_out() <= config_.session_out_limit) {
        events |= POLLIN;
      }
      if (session->out_pos < session->out.size()) {
        events |= POLLOUT;
      }
      fds.push_back(pollfd{session->fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), 50);
    if (rc < 0 && errno != EINTR) {
      break;
    }

    if (fds[0].revents & POLLIN) {
      std::uint8_t buf[64];
      while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
      }
    }
    if (drain_requested_.load(std::memory_order_relaxed) && !draining_) {
      draining_ = true;
      close_fd(listen_fd_);
    }
    if (!draining_ && listen_idx >= 0 &&
        (fds[static_cast<std::size_t>(listen_idx)].revents & POLLIN)) {
      accept_clients();
    }
    for (std::size_t i = 0; i < sessions_.size() && base + i < fds.size();
         ++i) {
      Session& session = *sessions_[i];
      const short revents = fds[base + i].revents;
      if (revents & (POLLIN | POLLERR | POLLHUP)) {
        handle_session_input(session);
      }
      if (!session.dead && !session.close_after_flush) {
        process_session_frames(session);
      }
      if (!session.dead && session.out_pos < session.out.size()) {
        flush_session_output(session);
      }
    }
    sessions_.erase(
        std::remove_if(sessions_.begin(), sessions_.end(),
                       [](const std::unique_ptr<Session>& s) {
                         if (s->dead) {
                           int fd = s->fd;
                           close_fd(fd);
                           return true;
                         }
                         return false;
                       }),
        sessions_.end());

    health_check_tick();

    if (draining_) {
      break;
    }
  }
  finish_drain();
}

void Router::accept_clients() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sessions_.push_back(std::make_unique<Session>(fd, config_.max_frame_bytes));
  }
}

void Router::handle_session_input(Session& session) {
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::recv(session.fd, buf, sizeof buf, 0);
    if (n > 0) {
      session.decoder.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof buf) {
        break;
      }
      continue;
    }
    if (n == 0) {
      session.dead = true;
      return;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    session.dead = true;
    return;
  }
}

// Same contract as the daemon's frame loop: every protocol violation is
// answered with one typed ERROR frame and the connection closes after
// the flush — hostile bytes never take the router down.
void Router::process_session_frames(Session& session) {
  try {
    while (session.pending_out() <= config_.session_out_limit) {
      auto frame = session.decoder.next();
      if (!frame) {
        break;
      }
      const Request request = service::decode_request(*frame);
      append_reply(session, dispatch(request));
    }
  } catch (const ProtocolError& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.protocol_errors;
    }
    Reply reply;
    reply.type = MsgType::kError;
    reply.error.code = e.code();
    reply.error.message = e.what();
    append_reply(session, reply);
    session.close_after_flush = true;
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.protocol_errors;
    }
    Reply reply;
    reply.type = MsgType::kError;
    reply.error.code = ProtoError::kBadRequest;
    reply.error.message = std::string("internal error: ") + e.what();
    append_reply(session, reply);
    session.close_after_flush = true;
  }
}

void Router::append_reply(Session& session, const Reply& reply) {
  const std::vector<std::uint8_t> bytes =
      service::frame_bytes(service::encode_reply(reply));
  session.out.insert(session.out.end(), bytes.begin(), bytes.end());
}

void Router::flush_session_output(Session& session) {
  while (session.out_pos < session.out.size()) {
    const ssize_t n =
        ::send(session.fd, session.out.data() + session.out_pos,
               session.out.size() - session.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      session.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    session.dead = true;
    return;
  }
  session.out.clear();
  session.out_pos = 0;
  if (session.close_after_flush) {
    session.dead = true;
  }
}

void Router::finish_drain() {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  bool pending = true;
  while (pending && std::chrono::steady_clock::now() < deadline) {
    pending = false;
    for (auto& session : sessions_) {
      if (!session->dead && session->out_pos < session->out.size()) {
        flush_session_output(*session);
        pending |= !session->dead && session->out_pos < session->out.size();
      }
    }
    if (pending) {
      ::poll(nullptr, 0, 10);
    }
  }
  for (auto& session : sessions_) {
    close_fd(session->fd);
  }
  sessions_.clear();
}

// ------------------------------------------------------ worker links

Router::WorkerLink* Router::link(const std::string& worker_id) {
  const auto it = workers_.find(worker_id);
  return it == workers_.end() ? nullptr : it->second.get();
}

Reply Router::link_call(WorkerLink& worker, const Request& request,
                        int timeout_ms) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      if (!worker.client.connected()) {
        worker.client.connect(worker.host, worker.port, timeout_ms);
      }
      worker.client.set_io_timeout(timeout_ms);
      Reply reply = worker.client.call(request);
      worker.consecutive_failures = 0;
      worker.lost_since = std::chrono::steady_clock::time_point{};
      return reply;
    } catch (const ProtocolError& e) {
      if (e.code() != ProtoError::kCorrupted) {
        // A typed answer from the worker — not a link failure; the
        // caller decides whether it reaches the client.
        throw;
      }
      worker.client.close();
      if (attempt == 1) {
        note_link_failure(worker);
        throw;
      }
    } catch (const std::exception&) {
      worker.client.close();
      if (attempt == 1) {
        note_link_failure(worker);
        throw;
      }
    }
  }
  throw std::runtime_error("unreachable");
}

void Router::note_link_failure(WorkerLink& worker) {
  ++stats_.link_failures;
  if (++worker.consecutive_failures == 1) {
    worker.lost_since = std::chrono::steady_clock::now();
  }
  if (worker.state == LinkState::kActive &&
      worker.consecutive_failures >= config_.eviction_threshold) {
    evict_locked(worker);
  }
}

bool Router::within_migration_grace(const WorkerLink* worker) const {
  if (worker == nullptr || worker->state == LinkState::kLeft) {
    // A clean LEAVE arrives *after* migration: a job still pointing at a
    // left worker was never transplanted, and no grace will change that.
    return false;
  }
  if (worker->lost_since == std::chrono::steady_clock::time_point{}) {
    return true;  // link never failed yet — first sighting of trouble
  }
  const auto down = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - worker->lost_since)
                        .count();
  return down >= 0 &&
         static_cast<std::uint64_t>(down) < config_.migration_grace_ms;
}

void Router::evict_locked(WorkerLink& worker) {
  ring_.remove(worker.id);
  worker.state = LinkState::kEvicted;
  worker.client.close();
  ++stats_.evictions;
}

void Router::health_check_tick() {
  if (config_.health_every_ms == 0) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - last_health_)
                         .count();
  if (since < 0 ||
      static_cast<std::uint64_t>(since) < config_.health_every_ms) {
    return;
  }
  last_health_ = now;
  std::lock_guard<std::mutex> lock(mutex_);
  if (health_order_.empty()) {
    return;
  }
  // One probe per tick, round-robin, actives only — a dead worker costs
  // at most health_timeout_ms of io-thread time per tick.
  for (std::size_t tried = 0; tried < health_order_.size(); ++tried) {
    health_cursor_ = (health_cursor_ + 1) % health_order_.size();
    WorkerLink* worker = link(health_order_[health_cursor_]);
    if (worker == nullptr || worker->state != LinkState::kActive) {
      continue;
    }
    try {
      (void)link_call(*worker, service::make_plain(MsgType::kStats),
                      config_.health_timeout_ms);
    } catch (const std::exception&) {
      // link_call already counted the failure / evicted at threshold.
    }
    break;
  }
}

std::vector<Router::WorkerLink*> Router::candidates(
    std::uint64_t route_fp, const std::string& exclude) {
  std::vector<WorkerLink*> links;
  for (const std::string& id :
       ring_.preference(route_fp, ring_.size() == 0 ? 0 : ring_.size(),
                        exclude)) {
    WorkerLink* worker = link(id);
    if (worker != nullptr && worker->state == LinkState::kActive) {
      links.push_back(worker);
    }
  }
  return links;
}

// ------------------------------------------------------ job tracking

std::uint64_t Router::track_job(const std::string& worker_id,
                                std::uint64_t remote_id,
                                std::uint64_t fingerprint) {
  const std::uint64_t id = next_job_id_++;
  RoutedJob job;
  job.worker_id = worker_id;
  job.remote_id = remote_id;
  job.fingerprint = fingerprint;
  jobs_.emplace(id, std::move(job));
  return id;
}

void Router::mark_terminal(std::uint64_t router_job_id, RoutedJob& job) {
  if (job.terminal) {
    return;
  }
  job.terminal = true;
  terminal_order_.push_back(router_job_id);
  gc_jobs();
}

void Router::gc_jobs() {
  while (terminal_order_.size() > config_.job_retention_limit) {
    jobs_.erase(terminal_order_.front());
    terminal_order_.pop_front();
  }
}

// --------------------------------------------- router result cache

void Router::cache_result(const RoutedJob& job,
                          const std::vector<std::uint8_t>& bytes,
                          std::uint64_t bits) {
  if (config_.result_cache_entries == 0 || !job.cacheable ||
      job.route_fp == 0 || bits == 0) {
    return;
  }
  auto [it, inserted] = result_cache_.try_emplace(job.route_fp);
  if (!inserted) {
    return;  // the fingerprint discipline makes the first copy canonical
  }
  it->second.bytes = bytes;
  it->second.bits = bits;
  result_cache_order_.push_back(job.route_fp);
  while (result_cache_order_.size() > config_.result_cache_entries) {
    result_cache_.erase(result_cache_order_.front());
    result_cache_order_.pop_front();
  }
}

const Router::CachedBlock* Router::cached_result(
    std::uint64_t route_fp) const {
  if (config_.result_cache_entries == 0 || route_fp == 0) {
    return nullptr;
  }
  const auto it = result_cache_.find(route_fp);
  return it == result_cache_.end() ? nullptr : &it->second;
}

bool Router::adopt_cached_result(RoutedJob& job) {
  if (!job.cacheable) {
    return false;
  }
  const CachedBlock* hit = cached_result(job.route_fp);
  if (hit == nullptr) {
    return false;
  }
  job.held_block = hit->bytes;
  job.held_block_bits = hit->bits;
  job.held = true;
  return true;
}

// -------------------------------------------------- request handling

Reply Router::dispatch(const Request& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  Reply reply;
  switch (request.type) {
    case MsgType::kSubmit:
      reply.type = MsgType::kSubmitReply;
      reply.submit = route_submit(request.submit);
      break;
    case MsgType::kMutate:
      reply.type = MsgType::kMutateReply;
      reply.mutate = route_mutate(request.mutate);
      break;
    case MsgType::kStatus:
      reply.type = MsgType::kStatusReply;
      reply.status = route_status(request.job.job_id);
      break;
    case MsgType::kResult:
      reply.type = MsgType::kResultReply;
      reply.result = route_result(request.job.job_id);
      break;
    case MsgType::kCancel:
      reply.type = MsgType::kCancelReply;
      reply.cancel = route_cancel(request.job.job_id);
      break;
    case MsgType::kStats:
      reply.type = MsgType::kStatsReply;
      reply.stats = aggregate_stats();
      break;
    case MsgType::kShutdown:
      // Drains the router tier only; workers are independent processes
      // with their own SIGTERM story (which migrates their jobs here —
      // so a router must not take itself down mid-handover lightly).
      reply.type = MsgType::kShutdownReply;
      reply.shutdown.draining = true;
      request_drain();
      break;
    case MsgType::kJoin:
      reply.type = MsgType::kJoinReply;
      reply.join = handle_join(request.join);
      break;
    case MsgType::kLeave:
      reply.type = MsgType::kLeaveReply;
      reply.leave = handle_leave(request.leave);
      break;
    case MsgType::kMigrate:
      reply.type = MsgType::kMigrateReply;
      reply.migrate = forward_migrate(request.migrate);
      break;
    case MsgType::kLookup:
      reply.type = MsgType::kLookupReply;
      reply.lookup = cluster_lookup(request.lookup.fingerprint);
      break;
    default:
      throw ProtocolError(ProtoError::kUnknownType, "unhandled request type");
  }
  return reply;
}

SubmitReply Router::route_submit(const SubmitRequest& request) {
  const std::uint64_t route_fp = route_fingerprint(request);
  const bool cacheable = request.stream_ns.empty();
  if (cacheable) {
    // Router-held result (opt-in, config.result_cache_entries): identical
    // non-stream work already produced a block through this router, so
    // answer without touching a worker link at all.  This is what keeps a
    // thousand concurrent submitters from serializing on the (single)
    // connection to each worker.
    if (const CachedBlock* hit = cached_result(route_fp)) {
      ++stats_.result_cache_hits;
      const std::uint64_t router_id = track_job("", 0, 0);
      RoutedJob& job = jobs_[router_id];
      job.route_fp = route_fp;
      job.cacheable = true;
      job.held_block = hit->bytes;
      job.held_block_bits = hit->bits;
      job.held = true;
      mark_terminal(router_id, job);
      SubmitReply reply;
      reply.disposition = SubmitDisposition::kCacheHit;
      reply.job_id = router_id;
      reply.detail = "served from the router result cache";
      return reply;
    }
  }
  std::vector<WorkerLink*> order = candidates(route_fp);
  SubmitReply no_worker;
  no_worker.disposition = SubmitDisposition::kBusy;
  no_worker.detail = "no live workers in the ring";
  if (order.empty()) {
    return no_worker;
  }
  bool spilled = false;
  SubmitReply last_busy = no_worker;
  for (WorkerLink* worker : order) {
    Reply raw;
    try {
      raw = link_call(*worker, service::make_submit(request),
                      config_.worker_timeout_ms);
    } catch (const ProtocolError&) {
      throw;  // typed worker answer travels to the client verbatim
    } catch (const std::exception&) {
      spilled = true;
      continue;  // link failure: spill to the next candidate
    }
    SubmitReply reply = raw.submit;
    if (reply.disposition == SubmitDisposition::kDraining) {
      // The worker told us before the health checker could: stop
      // routing new work there until it rejoins.
      if (worker->state == LinkState::kActive) {
        ring_.remove(worker->id);
        worker->state = LinkState::kDraining;
      }
      spilled = true;
      continue;
    }
    if (reply.disposition == SubmitDisposition::kBusy) {
      last_busy = reply;
      spilled = true;
      continue;
    }
    if (reply.disposition == SubmitDisposition::kRejected ||
        reply.disposition == SubmitDisposition::kDeadline) {
      return reply;  // spilling over cannot cure a semantic rejection
    }
    // Admitted (queued / cache hit / coalesced).
    ++stats_.submits_routed;
    if (spilled) {
      ++stats_.spillovers;
    }
    const std::uint64_t router_id =
        track_job(worker->id, reply.job_id, reply.fingerprint);
    {
      RoutedJob& job = jobs_[router_id];
      job.route_fp = route_fp;
      job.cacheable = cacheable;
    }
    if (reply.disposition == SubmitDisposition::kQueued &&
        config_.cross_worker_lookup && reply.fingerprint != 0) {
      // A fresh execution was scheduled — but another worker may have
      // finished identical work (pre-rebalance traffic, a migrated
      // result).  Probe by authoritative fingerprint; a hit serves the
      // cached bytes and cancels the queued duplicate.
      for (const std::string& id : ring_.workers()) {
        WorkerLink* other = link(id);
        if (other == nullptr || other == worker ||
            other->state != LinkState::kActive) {
          continue;
        }
        LookupReply found;
        try {
          found = link_call(*other, service::make_lookup(reply.fingerprint),
                            config_.worker_timeout_ms)
                      .lookup;
        } catch (const std::exception&) {
          continue;
        }
        if (!found.found) {
          continue;
        }
        ++stats_.cross_worker_hits;
        try {
          (void)link_call(*worker,
                          service::make_job_request(MsgType::kCancel,
                                                    reply.job_id),
                          config_.worker_timeout_ms);
        } catch (const std::exception&) {
          // Best-effort: a cancel that misses just runs a redundant job.
        }
        RoutedJob& job = jobs_[router_id];
        job.held_block = std::move(found.block_bytes);
        job.held_block_bits = found.block_bits;
        job.held = true;
        mark_terminal(router_id, job);
        cache_result(job, job.held_block, job.held_block_bits);
        reply.disposition = SubmitDisposition::kCacheHit;
        reply.detail = "served from " + id + "'s cache";
        break;
      }
    }
    reply.job_id = router_id;
    return reply;
  }
  return last_busy;
}

MutateReply Router::route_mutate(const MutateRequest& request) {
  // A namespace lives wholly on one worker; the ring pins which one
  // (the same key stream-addressed submits route by).
  std::vector<WorkerLink*> order = candidates(route_fingerprint(request));
  for (WorkerLink* worker : order) {
    try {
      return link_call(*worker, service::make_mutate(request),
                       config_.worker_timeout_ms)
          .mutate;
    } catch (const ProtocolError&) {
      throw;
    } catch (const std::exception&) {
      continue;
    }
  }
  MutateReply reply;
  reply.outcome = service::MutateOutcome::kRejected;
  reply.detail = "no live workers in the ring";
  return reply;
}

StatusReply Router::route_status(std::uint64_t router_job_id) {
  StatusReply reply;
  reply.job_id = router_job_id;
  const auto it = jobs_.find(router_job_id);
  if (it == jobs_.end()) {
    reply.state = JobState::kUnknown;
    reply.detail = "no such job";
    return reply;
  }
  RoutedJob& job = it->second;
  if (!job.held && adopt_cached_result(job)) {
    // A sibling poll already pulled this fingerprint's block into the
    // router result cache; no reason to ask the worker again.
    mark_terminal(router_job_id, job);
  }
  if (job.held) {
    reply.state = JobState::kDone;
    reply.fingerprint = job.fingerprint;
    reply.detail = "served from the cluster cache";
    return reply;
  }
  WorkerLink* worker = link(job.worker_id);
  bool link_failed = worker == nullptr || worker->state == LinkState::kEvicted;
  if (worker != nullptr && worker->state != LinkState::kEvicted) {
    try {
      StatusReply remote =
          link_call(*worker,
                    service::make_job_request(MsgType::kStatus, job.remote_id),
                    config_.worker_timeout_ms)
              .status;
      if (remote.state != JobState::kUnknown) {
        remote.job_id = router_job_id;
        if (remote.state == JobState::kSuspended) {
          // Mask the handover: the origin is draining and its MIGRATE
          // will repoint this entry; to the client the job is simply
          // still waiting its turn.
          remote.state = JobState::kQueued;
          remote.detail = "migrating off " + job.worker_id;
        }
        if (remote.state == JobState::kDone ||
            remote.state == JobState::kFailed ||
            remote.state == JobState::kCancelled) {
          mark_terminal(router_job_id, job);
        }
        return remote;
      }
    } catch (const std::exception&) {
      link_failed = true;  // fall through to the cluster-wide fallback
    }
  }
  // The owning worker is gone (or forgot the job).  If any surviving
  // cache holds the fingerprint, the job is effectively done.
  LookupReply found = cluster_lookup(job.fingerprint);
  if (found.found) {
    job.held_block = std::move(found.block_bytes);
    job.held_block_bits = found.block_bits;
    job.held = true;
    mark_terminal(router_job_id, job);
    cache_result(job, job.held_block, job.held_block_bits);
    reply.state = JobState::kDone;
    reply.fingerprint = job.fingerprint;
    reply.detail = "served from the cluster cache";
    return reply;
  }
  if (link_failed && within_migration_grace(worker)) {
    // The link failed but a draining worker closes its sessions *before*
    // it migrates, so this is most likely the handover window.  Keep the
    // client polling; the MIGRATE repoints this entry, and a worker that
    // actually died runs out the grace window, after which this path
    // answers kFailed.
    reply.state = JobState::kQueued;
    reply.fingerprint = job.fingerprint;
    reply.detail = "worker " + job.worker_id +
                   " unreachable; migration may be pending";
    return reply;
  }
  reply.state = JobState::kFailed;
  reply.fingerprint = job.fingerprint;
  reply.detail = "worker " + job.worker_id + " lost before the result was "
                 "fetched; resubmit";
  mark_terminal(router_job_id, job);
  return reply;
}

ResultReply Router::route_result(std::uint64_t router_job_id) {
  ResultReply reply;
  const auto it = jobs_.find(router_job_id);
  if (it == jobs_.end()) {
    reply.state = JobState::kUnknown;
    reply.detail = "no such job";
    return reply;
  }
  RoutedJob& job = it->second;
  if (!job.held && adopt_cached_result(job)) {
    mark_terminal(router_job_id, job);
  }
  if (job.held) {
    reply.state = JobState::kDone;
    reply.fingerprint = job.fingerprint;
    reply.from_cache = true;
    reply.ready = true;
    reply.block_bytes = job.held_block;
    reply.block_bits = job.held_block_bits;
    return reply;
  }
  WorkerLink* worker = link(job.worker_id);
  bool link_failed = worker == nullptr || worker->state == LinkState::kEvicted;
  if (worker != nullptr && worker->state != LinkState::kEvicted) {
    try {
      ResultReply remote =
          link_call(*worker,
                    service::make_job_request(MsgType::kResult, job.remote_id),
                    config_.worker_timeout_ms)
              .result;
      if (remote.state != JobState::kUnknown) {
        if (remote.state == JobState::kSuspended) {
          remote.state = JobState::kQueued;  // migration in flight
          remote.detail = "migrating off " + job.worker_id;
        }
        if (remote.ready || remote.state == JobState::kFailed ||
            remote.state == JobState::kCancelled) {
          mark_terminal(router_job_id, job);
        }
        if (remote.ready && remote.state == JobState::kDone) {
          cache_result(job, remote.block_bytes, remote.block_bits);
        }
        return remote;
      }
    } catch (const std::exception&) {
      link_failed = true;  // fall through to the cluster-wide fallback
    }
  }
  LookupReply found = cluster_lookup(job.fingerprint);
  if (found.found) {
    job.held_block = std::move(found.block_bytes);
    job.held_block_bits = found.block_bits;
    job.held = true;
    mark_terminal(router_job_id, job);
    cache_result(job, job.held_block, job.held_block_bits);
    reply.state = JobState::kDone;
    reply.fingerprint = job.fingerprint;
    reply.from_cache = true;
    reply.ready = true;
    reply.block_bytes = job.held_block;
    reply.block_bits = job.held_block_bits;
    return reply;
  }
  if (link_failed && within_migration_grace(worker)) {
    reply.state = JobState::kQueued;  // likely the migration handover window
    reply.fingerprint = job.fingerprint;
    reply.detail = "worker " + job.worker_id +
                   " unreachable; migration may be pending";
    return reply;
  }
  reply.state = JobState::kFailed;
  reply.fingerprint = job.fingerprint;
  reply.detail = "worker " + job.worker_id + " lost before the result was "
                 "fetched; resubmit";
  mark_terminal(router_job_id, job);
  return reply;
}

CancelReply Router::route_cancel(std::uint64_t router_job_id) {
  CancelReply reply;
  const auto it = jobs_.find(router_job_id);
  if (it == jobs_.end()) {
    reply.outcome = CancelOutcome::kNotFound;
    return reply;
  }
  RoutedJob& job = it->second;
  if (job.held) {
    reply.outcome = CancelOutcome::kTooLate;
    return reply;
  }
  WorkerLink* worker = link(job.worker_id);
  if (worker == nullptr || worker->state == LinkState::kEvicted) {
    reply.outcome = CancelOutcome::kNotFound;
    return reply;
  }
  try {
    return link_call(*worker,
                     service::make_job_request(MsgType::kCancel, job.remote_id),
                     config_.worker_timeout_ms)
        .cancel;
  } catch (const std::exception&) {
    reply.outcome = CancelOutcome::kNotFound;
    return reply;
  }
}

StatsReply Router::aggregate_stats() {
  // Cluster view: counters sum across workers; gauges that measure
  // capacity (workers, queue depth, running, cache entries) sum too;
  // latency percentiles take the worst worker (the cluster tail is
  // bounded by its slowest member); uptime is the oldest worker's.
  StatsReply total;
  for (const auto& [id, worker] : workers_) {
    if (worker->state != LinkState::kActive) {
      continue;
    }
    StatsReply s;
    try {
      s = link_call(*worker, service::make_plain(MsgType::kStats),
                    config_.worker_timeout_ms)
              .stats;
    } catch (const std::exception&) {
      continue;
    }
    total.uptime_ms = std::max(total.uptime_ms, s.uptime_ms);
    total.submits += s.submits;
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.coalesced += s.coalesced;
    total.busy_rejections += s.busy_rejections;
    total.draining_rejections += s.draining_rejections;
    total.jobs_completed += s.jobs_completed;
    total.jobs_failed += s.jobs_failed;
    total.jobs_cancelled += s.jobs_cancelled;
    total.jobs_suspended += s.jobs_suspended;
    total.jobs_resumed += s.jobs_resumed;
    total.protocol_errors += s.protocol_errors;
    total.queue_depth += s.queue_depth;
    total.running += s.running;
    total.workers += s.workers;
    total.cache_entries += s.cache_entries;
    total.cache_evictions += s.cache_evictions;
    total.retried_submits += s.retried_submits;
    total.deadline_rejections += s.deadline_rejections;
    total.deadline_expired += s.deadline_expired;
    total.quarantined_files += s.quarantined_files;
    total.mutations_applied += s.mutations_applied;
    total.graph_version = std::max(total.graph_version, s.graph_version);
    total.dirty_sources_rerun += s.dirty_sources_rerun;
    total.cache_invalidations += s.cache_invalidations;
    total.backend_downgrades += s.backend_downgrades;
    total.migrated_out += s.migrated_out;
    total.migrated_in += s.migrated_in;
    total.lookups_served += s.lookups_served;
    total.qps += s.qps;
    total.worker_utilization =
        std::max(total.worker_utilization, s.worker_utilization);
    total.latency_p50_ms = std::max(total.latency_p50_ms, s.latency_p50_ms);
    total.latency_p90_ms = std::max(total.latency_p90_ms, s.latency_p90_ms);
    total.latency_p99_ms = std::max(total.latency_p99_ms, s.latency_p99_ms);
  }
  // Submits the router answered from its own result cache never reached
  // a worker; to a client reading the cluster view they are submits that
  // hit a cache all the same.
  total.submits += stats_.result_cache_hits;
  total.cache_hits += stats_.result_cache_hits;
  return total;
}

JoinReply Router::handle_join(const JoinRequest& request) {
  JoinReply reply;
  if (request.worker_id.empty() || request.host.empty() || request.port == 0) {
    reply.accepted = false;
    reply.detail = "join needs worker_id, host, and a nonzero port";
    return reply;
  }
  auto it = workers_.find(request.worker_id);
  if (it == workers_.end()) {
    auto worker = std::make_unique<WorkerLink>();
    worker->id = request.worker_id;
    worker->host = request.host;
    worker->port = request.port;
    it = workers_.emplace(request.worker_id, std::move(worker)).first;
    health_order_.push_back(request.worker_id);
    ++stats_.joins;
  }
  WorkerLink& worker = *it->second;
  worker.host = request.host;  // a restarted worker may have moved
  worker.port = request.port;
  worker.consecutive_failures = 0;
  worker.lost_since = std::chrono::steady_clock::time_point{};
  if (worker.state != LinkState::kActive) {
    if (worker.state == LinkState::kEvicted) {
      ++stats_.rejoins;  // the heartbeat healed a health-check eviction
    }
    worker.state = LinkState::kActive;
    worker.client.close();  // stale connection from the previous life
  }
  ring_.add(worker.id);  // idempotent
  reply.accepted = true;
  reply.detail = "ring size " + std::to_string(ring_.size());
  return reply;
}

LeaveReply Router::handle_leave(const LeaveRequest& request) {
  LeaveReply reply;
  WorkerLink* worker = link(request.worker_id);
  if (worker == nullptr) {
    reply.removed = false;
    return reply;
  }
  reply.removed = ring_.remove(worker->id);
  // kLeft, not erased: in-flight router jobs may still poll this link
  // until their results migrate over or the worker actually exits.
  worker->state = LinkState::kLeft;
  if (reply.removed) {
    ++stats_.leaves;
  }
  return reply;
}

MigrateReply Router::forward_migrate(const MigrateRequest& request) {
  MigrateReply last;
  last.outcome = MigrateOutcome::kRejected;
  last.fingerprint = request.fingerprint;
  last.detail = "no surviving worker to take the transplant";
  // Route the transplant like any other fingerprint, but never back to
  // the worker that is shedding it.
  std::vector<WorkerLink*> order =
      candidates(request.fingerprint, request.origin_worker);
  for (WorkerLink* target : order) {
    MigrateReply reply;
    try {
      reply = link_call(*target, service::make_migrate(request),
                        config_.worker_timeout_ms)
                  .migrate;
    } catch (const std::exception&) {
      continue;
    }
    if (reply.outcome == MigrateOutcome::kAccepted ||
        reply.outcome == MigrateOutcome::kCoalesced) {
      ++stats_.migrations_forwarded;
      // Repoint every routed job that referenced the origin's copy, so
      // clients polling their router ids land on the new host.
      for (auto& [id, job] : jobs_) {
        if (!job.held && job.worker_id == request.origin_worker &&
            job.remote_id == request.origin_job_id) {
          job.worker_id = target->id;
          job.remote_id = reply.job_id;
        }
      }
      return reply;
    }
    last = reply;  // rejected or draining: try the next survivor
  }
  ++stats_.migrations_failed;
  return last;
}

LookupReply Router::cluster_lookup(std::uint64_t fingerprint) {
  LookupReply reply;
  reply.fingerprint = fingerprint;
  if (fingerprint == 0) {
    return reply;
  }
  for (const auto& [id, worker] : workers_) {
    if (worker->state != LinkState::kActive) {
      continue;
    }
    LookupReply found;
    try {
      found = link_call(*worker, service::make_lookup(fingerprint),
                        config_.worker_timeout_ms)
                  .lookup;
    } catch (const std::exception&) {
      continue;
    }
    if (found.found) {
      return found;
    }
  }
  return reply;
}

}  // namespace congestbc::cluster
