#include "cluster/ring.hpp"

#include "snapshot/fingerprint.hpp"

namespace congestbc::cluster {

namespace {

/// Position of one virtual point.  A domain tag keeps ring positions
/// decorrelated from the run fingerprints they route (both are FNV-1a
/// products; without the tag a worker id that happened to hash near a
/// hot fingerprint would do so for structurally related keys too).
std::uint64_t vnode_position(const std::string& worker_id, unsigned index) {
  FingerprintBuilder fp;
  static const char kTag[] = "ring-vnode";
  fp.mix_bytes(kTag, sizeof kTag);
  fp.mix_bytes(worker_id.data(), worker_id.size());
  fp.mix(index);
  return fp.value();
}

/// Where a key lands on the circle (same tag discipline).
std::uint64_t key_position(std::uint64_t fingerprint) {
  FingerprintBuilder fp;
  static const char kTag[] = "ring-key";
  fp.mix_bytes(kTag, sizeof kTag);
  fp.mix(fingerprint);
  return fp.value();
}

}  // namespace

HashRing::HashRing(unsigned vnodes_per_worker)
    : vnodes_(vnodes_per_worker == 0 ? 1 : vnodes_per_worker) {}

bool HashRing::add(const std::string& worker_id) {
  if (!members_.insert(worker_id).second) {
    return false;
  }
  for (unsigned i = 0; i < vnodes_; ++i) {
    // First writer wins a (vanishingly unlikely) 64-bit point collision;
    // remove() checks ownership, so the loser's removal cannot strip the
    // winner's point.
    points_.emplace(vnode_position(worker_id, i), worker_id);
  }
  return true;
}

bool HashRing::remove(const std::string& worker_id) {
  if (members_.erase(worker_id) == 0) {
    return false;
  }
  for (unsigned i = 0; i < vnodes_; ++i) {
    const auto it = points_.find(vnode_position(worker_id, i));
    if (it != points_.end() && it->second == worker_id) {
      points_.erase(it);
    }
  }
  return true;
}

bool HashRing::contains(const std::string& worker_id) const {
  return members_.count(worker_id) != 0;
}

std::string HashRing::owner(std::uint64_t fingerprint) const {
  if (points_.empty()) {
    return "";
  }
  auto it = points_.lower_bound(key_position(fingerprint));
  if (it == points_.end()) {
    it = points_.begin();  // wrap
  }
  return it->second;
}

std::vector<std::string> HashRing::preference(std::uint64_t fingerprint,
                                              std::size_t count,
                                              const std::string& exclude) const {
  std::vector<std::string> order;
  if (points_.empty() || count == 0) {
    return order;
  }
  std::set<std::string> seen;
  auto it = points_.lower_bound(key_position(fingerprint));
  for (std::size_t steps = 0; steps < points_.size() && order.size() < count;
       ++steps, ++it) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    if (it->second == exclude || !seen.insert(it->second).second) {
      continue;
    }
    order.push_back(it->second);
  }
  return order;
}

std::vector<std::string> HashRing::workers() const {
  return std::vector<std::string>(members_.begin(), members_.end());
}

}  // namespace congestbc::cluster
