// Flight recorder: a bounded, lock-free ring of timing spans fed by the
// CONGEST engine and the BC pipeline (DESIGN.md §11).
//
// Writers claim a slot with one relaxed fetch_add and store four relaxed
// 64-bit words — no locks, no heap allocation, no syscalls on the hot
// path.  The ring keeps the newest `capacity` events; older ones are
// overwritten and counted in dropped().  Readers snapshot after the run
// has quiesced (the engine is synchronous, so "after run() returns" is
// quiesced by construction).
//
// Determinism contract: the recorder READS the clock but never feeds
// anything back into execution — no engine branch ever depends on
// recorder state.  tests/obs_test.cpp asserts bit-identity of results,
// metrics and message traces with recording on vs off.
//
// Torn events: if writers lap the ring while another writer is still
// filling the slot they wrap onto, that one slot's words may mix two
// events.  The relaxed atomics keep this data-race-free (TSan-clean);
// a flight recorder tolerates one garbled frame under overflow, and
// dropped() tells the reader overflow happened.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace congestbc::obs {

/// What a span measured.  Values are stable identifiers (they appear in
/// Chrome trace exports); add new phases at the end.
enum class Phase : std::uint16_t {
  kCrashBookkeeping = 1,  ///< engine round phase 1: fault + stall scan
  kNodeExecute = 2,       ///< engine round phase 2: one lane's node range
  kDelayedRelease = 3,    ///< engine round phase 3: delayed-bundle swap
  kMerge = 4,             ///< engine round phase 4: outbox merge + metrics
  kRound = 5,             ///< one whole round (legacy engine)
  kTreeBuild = 6,         ///< pipeline: BFS-tree build + DFS token
  kCountingWave = 7,      ///< pipeline: staggered per-source counting
  kAggregation = 8,       ///< pipeline: Algorithm 3 aggregation waves
  kJob = 9,               ///< daemon: one job execution end to end
  kActiveSetBuild = 10,   ///< frontier engine: wake-heap pop + mark merge
  kLaneDispatch = 11,     ///< frontier engine: one lane's active chunk
  kQuiescenceSkip = 12,   ///< frontier engine: fast-forwarded empty rounds
};

const char* phase_name(Phase phase);

/// One recorded span, in plain (non-atomic) snapshot form.
struct SpanEvent {
  std::uint64_t start_ns = 0;     ///< steady-clock nanoseconds
  std::uint64_t duration_ns = 0;
  std::uint64_t round = 0;        ///< logical round the span belongs to
  std::uint32_t lane = 0;         ///< worker lane (0 = calling thread)
  Phase phase = Phase::kRound;

  friend bool operator==(const SpanEvent&, const SpanEvent&) = default;
};

class FlightRecorder {
 public:
  /// Allocates the ring once, up front (the only allocation it ever
  /// does).  Capacity is clamped to >= 1.
  explicit FlightRecorder(std::size_t capacity = std::size_t{1} << 16);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Steady-clock nanoseconds (monotonic; only differences are
  /// meaningful).
  static std::uint64_t now_ns();

  /// Appends one span.  Wait-free: one fetch_add + four relaxed stores.
  void record(Phase phase, std::uint64_t round, std::uint32_t lane,
              std::uint64_t start_ns, std::uint64_t duration_ns);

  std::size_t capacity() const { return slots_.size(); }

  /// Total record() calls since construction / clear().
  std::uint64_t recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Events overwritten because the ring wrapped.
  std::uint64_t dropped() const {
    const std::uint64_t n = recorded();
    return n > slots_.size() ? n - slots_.size() : 0;
  }

  /// Copies the surviving events oldest-first.  Call only while no
  /// writer is active (after the instrumented run has returned).
  std::vector<SpanEvent> snapshot() const;

  /// Resets the ring for reuse.  Same quiescence requirement.
  void clear();

 private:
  struct Slot {
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
    std::atomic<std::uint64_t> round{0};
    /// lane in the high 32 bits, Phase in the low 16; 0 = never written.
    std::atomic<std::uint64_t> meta{0};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

}  // namespace congestbc::obs
