// Per-phase round/traffic accounting for one pipeline run.
//
// The BC pipeline's logical phases (BFS-tree build + DFS token, the
// staggered counting waves, the Algorithm 3 aggregation waves) occupy
// disjoint round ranges that are pure functions of the run's recorded
// outputs — so the profile is derived deterministically after the run
// (algo/bc_pipeline.cpp harvest()) rather than sampled during it, and
// is bit-identical across engines and thread counts like everything
// else in DistributedBcResult.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace congestbc::obs {

struct PhaseStats {
  std::string name;
  /// Round range [begin_round, end_round) the phase occupied.
  std::uint64_t begin_round = 0;
  std::uint64_t end_round = 0;
  std::uint64_t rounds = 0;  ///< end_round - begin_round
  /// Traffic summed over the range (0 when per-round recording was off).
  std::uint64_t physical_messages = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t bits = 0;

  friend bool operator==(const PhaseStats&, const PhaseStats&) = default;
};

/// One-line rendering for STATUS replies and CLI output, e.g.
/// "tree_build:[0,9) msgs=312 bits=9984; counting:[9,131) ...".
std::string format_phase_timeline(const std::vector<PhaseStats>& phases);

}  // namespace congestbc::obs
