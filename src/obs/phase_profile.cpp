#include "obs/phase_profile.hpp"

namespace congestbc::obs {

std::string format_phase_timeline(const std::vector<PhaseStats>& phases) {
  std::string out;
  for (const PhaseStats& phase : phases) {
    if (!out.empty()) {
      out += "; ";
    }
    out += phase.name;
    out += ":[" + std::to_string(phase.begin_round) + "," +
           std::to_string(phase.end_round) + ")";
    out += " msgs=" + std::to_string(phase.physical_messages);
    out += " bits=" + std::to_string(phase.bits);
  }
  return out;
}

}  // namespace congestbc::obs
