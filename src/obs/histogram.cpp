#include "obs/histogram.hpp"

#include <bit>

namespace congestbc::obs {

namespace {

/// Index of the smallest bucket whose bound 2^i holds `value`.
unsigned bucket_index(std::uint64_t value) {
  if (value <= 1) {
    return 0;
  }
  const unsigned i = static_cast<unsigned>(std::bit_width(value - 1));
  return i < Histogram::kBuckets ? i : Histogram::kBuckets;
}

}  // namespace

void Histogram::add(std::uint64_t value) {
  buckets_.at(bucket_index(value)) += 1;
  count_ += 1;
  sum_ += value;
  if (count_ == 1 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (unsigned i = 0; i <= kBuckets; ++i) {
    buckets_.at(i) += other.buckets_.at(i);
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string Histogram::summary() const {
  return "count=" + std::to_string(count_) + " sum=" + std::to_string(sum_) +
         " min=" + std::to_string(min()) + " max=" + std::to_string(max_);
}

}  // namespace congestbc::obs
