#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace congestbc::obs {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

/// Microseconds with fixed three decimals — stable formatting so only
/// the sampled clock, never the renderer, varies between runs.
void append_us(std::string& out, std::uint64_t nanoseconds) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64,
                nanoseconds / 1000, nanoseconds % 1000);
  out += buf;
}

class EventList {
 public:
  explicit EventList(std::string& out) : out_(out) {}

  /// Starts one event object and returns the accumulator; the caller
  /// appends `"key":value` pairs and calls close().
  std::string& open() {
    if (!first_) {
      out_ += ",\n";
    }
    first_ = false;
    out_ += "{";
    return out_;
  }

  void close() { out_ += "}"; }

 private:
  std::string& out_;
  bool first_ = true;
};

void append_meta(EventList& events, const char* kind, std::uint64_t pid,
                 std::uint64_t tid, const std::string& name) {
  std::string& out = events.open();
  out += "\"name\":\"";
  out += kind;
  out += "\",\"ph\":\"M\",\"pid\":";
  append_u64(out, pid);
  out += ",\"tid\":";
  append_u64(out, tid);
  out += ",\"args\":{\"name\":\"";
  append_escaped(out, name);
  out += "\"}";
  events.close();
}

}  // namespace

std::string chrome_trace_json(const FlightRecorder* recorder,
                              const std::vector<PhaseStats>& phases,
                              const std::vector<CounterSeries>& counters,
                              const std::vector<TraceInstant>& instants,
                              const ChromeTraceOptions& options) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[\n";
  EventList events(out);

  append_meta(events, "process_name", 1, 0, "logical rounds");
  append_meta(events, "thread_name", 1, 0, "phases");

  for (const PhaseStats& phase : phases) {
    std::string& e = events.open();
    e += "\"name\":\"";
    append_escaped(e, phase.name);
    e += "\",\"ph\":\"X\",\"cat\":\"phase\",\"pid\":1,\"tid\":0,\"ts\":";
    append_u64(e, phase.begin_round);
    e += ",\"dur\":";
    append_u64(e, phase.rounds);
    e += ",\"args\":{\"rounds\":";
    append_u64(e, phase.rounds);
    e += ",\"physical_messages\":";
    append_u64(e, phase.physical_messages);
    e += ",\"logical_messages\":";
    append_u64(e, phase.logical_messages);
    e += ",\"bits\":";
    append_u64(e, phase.bits);
    e += "}";
    events.close();
  }

  for (const TraceInstant& instant : instants) {
    std::string& e = events.open();
    e += "\"name\":\"";
    append_escaped(e, instant.name);
    e += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":";
    append_u64(e, instant.round);
    events.close();
  }

  for (const CounterSeries& series : counters) {
    std::size_t stride = 1;
    if (options.max_counter_samples != 0 &&
        series.values.size() > options.max_counter_samples) {
      stride = (series.values.size() + options.max_counter_samples - 1) /
               options.max_counter_samples;
    }
    for (std::size_t i = 0; i < series.values.size(); i += stride) {
      std::string& e = events.open();
      e += "\"name\":\"";
      append_escaped(e, series.name);
      e += "\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
      append_u64(e, series.first_round + i);
      e += ",\"args\":{\"value\":";
      append_u64(e, series.values[i]);
      e += "}";
      events.close();
    }
  }

  if (recorder != nullptr && options.include_recorder_spans) {
    const std::vector<SpanEvent> spans = recorder->snapshot();
    std::uint64_t t0 = 0;
    bool have_t0 = false;
    std::uint32_t max_lane = 0;
    for (const SpanEvent& span : spans) {
      if (!have_t0 || span.start_ns < t0) {
        t0 = span.start_ns;
        have_t0 = true;
      }
      max_lane = std::max(max_lane, span.lane);
    }
    append_meta(events, "process_name", 2, 0, "workers");
    for (std::uint32_t lane = 0; lane <= max_lane && have_t0; ++lane) {
      append_meta(events, "thread_name", 2, lane,
                  "lane " + std::to_string(lane));
    }
    for (const SpanEvent& span : spans) {
      std::string& e = events.open();
      e += "\"name\":\"";
      e += phase_name(span.phase);
      e += "\",\"ph\":\"X\",\"cat\":\"engine\",\"pid\":2,\"tid\":";
      append_u64(e, span.lane);
      e += ",\"ts\":";
      append_us(e, span.start_ns - t0);
      e += ",\"dur\":";
      append_us(e, span.duration_ns);
      e += ",\"args\":{\"round\":";
      append_u64(e, span.round);
      e += "}";
      events.close();
    }
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace congestbc::obs
