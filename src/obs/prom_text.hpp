// Prometheus text-format (exposition format 0.0.4) rendering.
//
// A small append-only writer: the daemon composes its /metrics body
// from counters, gauges and obs::Histogram instances.  Output is fully
// deterministic for a given sequence of calls (fixed float formatting),
// which is what the golden test pins down.
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace congestbc::obs {

class PromWriter {
 public:
  /// Monotonic counter: `# TYPE name counter` + one sample.
  void counter(const std::string& name, const std::string& help,
               std::uint64_t value);

  void gauge(const std::string& name, const std::string& help, double value);

  /// Full native histogram: cumulative `_bucket{le=...}` samples for
  /// every non-empty prefix, `+Inf`, `_sum` and `_count`.
  void histogram(const std::string& name, const std::string& help,
                 const Histogram& histogram);

  const std::string& str() const { return out_; }

 private:
  void header(const std::string& name, const std::string& help,
              const char* type);

  std::string out_;
};

}  // namespace congestbc::obs
