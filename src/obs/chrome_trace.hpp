// Chrome trace-event JSON exporter (loadable in chrome://tracing and
// Perfetto).
//
// Two groups of tracks come out of one run:
//   pid 1 "logical rounds" — the deterministic phase timeline in round
//     units (1 round = 1 µs of trace time) plus "C" counter tracks for
//     per-round traffic and "i" instants marking counting-wave starts.
//   pid 2 "workers"        — wall-clock spans from the flight recorder,
//     one tid per engine lane.
//
// The logical tracks are a pure function of the run's deterministic
// outputs, so an export with `include_recorder_spans = false` is
// byte-stable and golden-testable; the worker tracks carry real
// timestamps and are only structurally checked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/phase_profile.hpp"
#include "obs/recorder.hpp"

namespace congestbc::obs {

/// One per-round counter track ("C" events), e.g. bits on wire.
struct CounterSeries {
  std::string name;
  std::uint64_t first_round = 0;
  std::vector<std::uint64_t> values;  ///< values[i] is round first_round+i
};

/// A point marker on the logical track, e.g. "wave s=3 start".
struct TraceInstant {
  std::string name;
  std::uint64_t round = 0;
};

struct ChromeTraceOptions {
  /// Include the wall-clock worker spans (pid 2).  Off = deterministic
  /// output.
  bool include_recorder_spans = true;
  /// Counter tracks are downsampled to at most this many points each so
  /// huge runs stay loadable; 0 keeps every round.
  std::size_t max_counter_samples = 4096;
};

/// Renders a `{"traceEvents":[...]}` document.  `recorder` may be null.
std::string chrome_trace_json(const FlightRecorder* recorder,
                              const std::vector<PhaseStats>& phases,
                              const std::vector<CounterSeries>& counters,
                              const std::vector<TraceInstant>& instants,
                              const ChromeTraceOptions& options = {});

}  // namespace congestbc::obs
