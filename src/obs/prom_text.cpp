#include "obs/prom_text.hpp"

#include <cinttypes>
#include <cstdio>

namespace congestbc::obs {

namespace {

void append_help_text(std::string& out, const std::string& help) {
  for (const char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

void append_double(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out += buf;
}

}  // namespace

void PromWriter::header(const std::string& name, const std::string& help,
                        const char* type) {
  out_ += "# HELP " + name + " ";
  append_help_text(out_, help);
  out_ += "\n# TYPE " + name + " ";
  out_ += type;
  out_ += "\n";
}

void PromWriter::counter(const std::string& name, const std::string& help,
                         std::uint64_t value) {
  header(name, help, "counter");
  out_ += name + " ";
  append_u64(out_, value);
  out_ += "\n";
}

void PromWriter::gauge(const std::string& name, const std::string& help,
                       double value) {
  header(name, help, "gauge");
  out_ += name + " ";
  append_double(out_, value);
  out_ += "\n";
}

void PromWriter::histogram(const std::string& name, const std::string& help,
                           const Histogram& histogram) {
  header(name, help, "histogram");
  // Cumulative buckets up to the last non-empty one keep the output
  // short; +Inf always closes the series.
  unsigned last = 0;
  for (unsigned i = 0; i <= Histogram::kBuckets; ++i) {
    if (histogram.bucket(i) != 0) {
      last = i;
    }
  }
  std::uint64_t cumulative = 0;
  for (unsigned i = 0; i <= last && i < Histogram::kBuckets; ++i) {
    cumulative += histogram.bucket(i);
    out_ += name + "_bucket{le=\"";
    append_u64(out_, Histogram::upper_bound(i));
    out_ += "\"} ";
    append_u64(out_, cumulative);
    out_ += "\n";
  }
  out_ += name + "_bucket{le=\"+Inf\"} ";
  append_u64(out_, histogram.count());
  out_ += "\n";
  out_ += name + "_sum ";
  append_u64(out_, histogram.sum());
  out_ += "\n";
  out_ += name + "_count ";
  append_u64(out_, histogram.count());
  out_ += "\n";
}

}  // namespace congestbc::obs
