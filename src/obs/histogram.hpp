// Power-of-two histogram for observability counters (DESIGN.md §11).
//
// Bucket i holds values v with v <= 2^i (the smallest such i), the
// classic Prometheus exponential layout, so prom_text.hpp can render it
// as a native `histogram` type with le="1","2","4",...  All state is a
// fixed array — adding a sample is O(1) and allocation-free.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace congestbc::obs {

class Histogram {
 public:
  /// Buckets 2^0 .. 2^(kBuckets-1); larger samples land in the overflow
  /// (+Inf) bucket.  2^39 ≈ 5.5e11 covers rounds, bits, messages and
  /// millisecond latencies comfortably.
  static constexpr unsigned kBuckets = 40;

  void add(std::uint64_t value);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  /// Smallest / largest sample; 0 when empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }

  /// Samples in bucket i (non-cumulative); i == kBuckets is overflow.
  std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
  /// Inclusive upper bound of bucket i (2^i).
  static std::uint64_t upper_bound(unsigned i) { return std::uint64_t{1} << i; }

  /// "count=N sum=S min=m max=M" — for logs and CLI summaries.
  std::string summary() const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets + 1> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace congestbc::obs
