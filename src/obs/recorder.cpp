#include "obs/recorder.hpp"

#include <chrono>

namespace congestbc::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kCrashBookkeeping:
      return "crash_bookkeeping";
    case Phase::kNodeExecute:
      return "node_execute";
    case Phase::kDelayedRelease:
      return "delayed_release";
    case Phase::kMerge:
      return "merge";
    case Phase::kRound:
      return "round";
    case Phase::kTreeBuild:
      return "tree_build";
    case Phase::kCountingWave:
      return "counting_wave";
    case Phase::kAggregation:
      return "aggregation";
    case Phase::kJob:
      return "job";
    case Phase::kActiveSetBuild:
      return "active_set_build";
    case Phase::kLaneDispatch:
      return "lane_dispatch";
    case Phase::kQuiescenceSkip:
      return "quiescence_skip";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

std::uint64_t FlightRecorder::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void FlightRecorder::record(Phase phase, std::uint64_t round,
                            std::uint32_t lane, std::uint64_t start_ns,
                            std::uint64_t duration_ns) {
  const std::uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(duration_ns, std::memory_order_relaxed);
  slot.round.store(round, std::memory_order_relaxed);
  const std::uint64_t meta = (static_cast<std::uint64_t>(lane) << 32) |
                             static_cast<std::uint64_t>(phase);
  slot.meta.store(meta, std::memory_order_relaxed);
}

std::vector<SpanEvent> FlightRecorder::snapshot() const {
  const std::uint64_t n = recorded();
  const std::uint64_t cap = slots_.size();
  const std::uint64_t live = n < cap ? n : cap;
  std::vector<SpanEvent> out;
  out.reserve(static_cast<std::size_t>(live));
  // Oldest surviving event first: when the ring wrapped, that is the
  // slot the cursor would overwrite next.
  const std::uint64_t first = n < cap ? 0 : n - cap;
  for (std::uint64_t i = 0; i < live; ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>((first + i) % cap)];
    SpanEvent event;
    event.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    event.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    event.round = slot.round.load(std::memory_order_relaxed);
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    event.lane = static_cast<std::uint32_t>(meta >> 32);
    event.phase = static_cast<Phase>(meta & 0xffffu);
    out.push_back(event);
  }
  return out;
}

void FlightRecorder::clear() {
  for (Slot& slot : slots_) {
    slot.start_ns.store(0, std::memory_order_relaxed);
    slot.duration_ns.store(0, std::memory_order_relaxed);
    slot.round.store(0, std::memory_order_relaxed);
    slot.meta.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_relaxed);
}

}  // namespace congestbc::obs
