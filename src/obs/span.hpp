// ScopedSpan: the one hook instrumented code uses to feed the flight
// recorder.  Construction samples the clock, destruction records the
// span — both no-ops when the recorder pointer is null, and the whole
// type compiles down to nothing when CONGESTBC_OBS_DISABLED is defined
// (CMake: -DCONGESTBC_OBS=OFF), so the engine's hot path carries at
// most one predictable null check per phase when tracing is off.
#pragma once

#include <cstdint>

#include "obs/recorder.hpp"

namespace congestbc::obs {

#if defined(CONGESTBC_OBS_DISABLED)

class ScopedSpan {
 public:
  ScopedSpan(FlightRecorder*, Phase, std::uint64_t = 0, std::uint32_t = 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#else

class ScopedSpan {
 public:
  ScopedSpan(FlightRecorder* recorder, Phase phase, std::uint64_t round = 0,
             std::uint32_t lane = 0)
      : recorder_(recorder),
        round_(round),
        start_ns_(recorder != nullptr ? FlightRecorder::now_ns() : 0),
        lane_(lane),
        phase_(phase) {}

  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      recorder_->record(phase_, round_, lane_, start_ns_,
                        FlightRecorder::now_ns() - start_ns_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  FlightRecorder* recorder_;
  std::uint64_t round_;
  std::uint64_t start_ns_;
  std::uint32_t lane_;
  Phase phase_;
};

#endif

}  // namespace congestbc::obs
