#include "congest/reliable.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/bit_io.hpp"
#include "congest/network.hpp"
#include "snapshot/snapshot.hpp"

namespace congestbc {

std::uint64_t reliable_header_bits(std::uint64_t inner_budget_bits,
                                   std::uint64_t max_inner_rounds) {
  // Three round-scale varuints (ack, produced, seq; seq can run two past
  // the inner round count after a done-node jump), three flag bits, and
  // the payload-length varuint.
  const std::uint64_t counter_bits = 6 + bit_width_u64(max_inner_rounds + 2);
  return 3 * counter_bits + 3 + (6 + bit_width_u64(inner_budget_bits));
}

std::uint64_t reliable_budget_bits(std::uint64_t inner_budget_bits,
                                   std::uint64_t max_inner_rounds) {
  return inner_budget_bits +
         reliable_header_bits(inner_budget_bits, max_inner_rounds);
}

/// The context the inner program sees: inner round numbering, the
/// synchronizer-assembled inbox, and sends captured as per-neighbor
/// batches (concatenated in send order, exactly like the simulator's
/// bundling).
class ReliableProgram::InnerContext final : public NodeContext {
 public:
  struct OutBatchBuffer {
    NodeId to = 0;
    BitWriter writer;
    bool sent = false;  ///< true even for zero-bit sends (presence matters)
  };

  InnerContext(const NodeContext& outer, std::uint64_t round,
               std::vector<InboundMessage> inbox,
               const std::vector<PeerState>& peers)
      : outer_(&outer), round_(round), inbox_(std::move(inbox)) {
    out_.reserve(peers.size());
    for (const auto& p : peers) {
      out_.push_back(OutBatchBuffer{p.id, BitWriter{}, false});
    }
  }

  NodeId id() const override { return outer_->id(); }
  std::uint32_t num_nodes() const override { return outer_->num_nodes(); }
  std::span<const NodeId> neighbors() const override {
    return outer_->neighbors();
  }
  std::uint64_t round() const override { return round_; }
  const std::vector<InboundMessage>& inbox() const override { return inbox_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    const auto it = std::lower_bound(
        out_.begin(), out_.end(), neighbor,
        [](const OutBatchBuffer& b, NodeId id) { return b.to < id; });
    CBC_EXPECTS(it != out_.end() && it->to == neighbor,
                "node tried to send to a non-neighbor");
    append_bits(it->writer, payload.bytes(), payload.bit_size());
    it->sent = true;
  }

  std::vector<OutBatchBuffer>& out() { return out_; }

 private:
  const NodeContext* outer_;
  std::uint64_t round_;
  std::vector<InboundMessage> inbox_;
  std::vector<OutBatchBuffer> out_;  // sorted by `to` (peers_ is sorted)
};

ReliableProgram::ReliableProgram(std::unique_ptr<NodeProgram> inner,
                                 std::uint64_t inner_budget_bits)
    : inner_(std::move(inner)), inner_budget_bits_(inner_budget_bits) {
  CBC_EXPECTS(inner_ != nullptr, "ReliableProgram needs an inner program");
}

ReliableProgram::~ReliableProgram() = default;

bool ReliableProgram::done() const { return inner_->done(); }

void ReliableProgram::init_peers(const NodeContext& ctx) {
  const auto neighbors = ctx.neighbors();
  peers_.reserve(neighbors.size());
  for (const NodeId v : neighbors) {
    PeerState p;
    p.id = v;
    peers_.push_back(std::move(p));
  }
  std::sort(peers_.begin(), peers_.end(),
            [](const PeerState& a, const PeerState& b) { return a.id < b.id; });
  initialized_ = true;
}

ReliableProgram::PeerState* ReliableProgram::find_peer(NodeId id) {
  const auto it = std::lower_bound(
      peers_.begin(), peers_.end(), id,
      [](const PeerState& p, NodeId v) { return p.id < v; });
  if (it == peers_.end() || it->id != id) {
    return nullptr;
  }
  return &*it;
}

bool ReliableProgram::knows_all_through(const PeerState& p,
                                        std::uint64_t index) const {
  // Knowledge is a contiguous prefix plus (once the peer is quiet) the
  // infinite empty tail from peer_produced on.  When the prefix reaches
  // peer_produced the two regions join and everything is known.
  if (index < p.known_prefix) {
    return true;
  }
  return p.peer_quiet && p.known_prefix >= p.peer_produced;
}

bool ReliableProgram::terminal_with(const PeerState& p) const {
  // Nothing left to say (done, all our batches acked) and nothing left to
  // learn (the peer is done and we know its complete production).
  return quiet_ && p.unacked.empty() && p.peer_quiet &&
         p.known_prefix >= p.peer_produced;
}

void ReliableProgram::parse_frame(PeerState& p,
                                  const InboundMessage& message) {
  BitReader reader = message.reader();
  const std::uint64_t ack = reader.read_varuint();
  const std::uint64_t produced = reader.read_varuint();
  const bool peer_quiet = reader.read_bool();
  const bool satisfied = reader.read_bool();
  const bool has_batch = reader.read_bool();

  // Every update is a monotone max / latch, so duplicated and delayed
  // (reordered) frames are harmless.
  p.acked = std::max(p.acked, ack);
  while (!p.unacked.empty() && p.unacked.front().seq < p.acked) {
    p.unacked.pop_front();
  }
  p.peer_produced = std::max(p.peer_produced, produced);
  p.peer_quiet = p.peer_quiet || peer_quiet;

  if (has_batch) {
    const std::uint64_t seq = reader.read_varuint();
    const std::uint64_t bits = reader.read_varuint();
    BitWriter payload;
    payload.reserve_bits(bits);
    std::uint64_t remaining = bits;
    while (remaining > 0) {
      const unsigned chunk =
          remaining >= 64 ? 64u : static_cast<unsigned>(remaining);
      payload.write(reader.read(chunk), chunk);
      remaining -= chunk;
    }
    // Stop-and-wait frontier: transmitting seq proves every non-empty
    // batch below it was already acked, so all unseen ones are empty.
    p.known_prefix = std::max(p.known_prefix, seq + 1);
    // Batch seq feeds inner round seq+1; stash unless already consumed.
    if (seq + 2 > executed_ && p.stored.count(seq) == 0) {
      p.stored.emplace(seq,
                       std::make_pair(payload.bytes(), payload.bit_size()));
    }
  } else {
    p.known_prefix = std::max(p.known_prefix, produced);
  }

  p.polled_needy = p.polled_needy || !satisfied;
}

void ReliableProgram::maybe_execute_inner_round(const NodeContext& ctx) {
  std::uint64_t round_to_run = 0;
  if (!quiet_) {
    // Sequential mode: run the next inner round once every neighbor's
    // previous batch is known.
    round_to_run = executed_;
    if (round_to_run > 0) {
      for (const auto& p : peers_) {
        if (!knows_all_through(p, round_to_run - 1)) {
          return;
        }
      }
    }
  } else {
    // Quiet mode: the inner program is done and sends nothing, so empty
    // inner rounds are skipped wholesale; only an explicit batch from a
    // still-working neighbor warrants running it again (a done program
    // treats it as a no-op, but the real network would deliver it too).
    bool have = false;
    std::uint64_t oldest = 0;
    for (const auto& p : peers_) {
      if (!p.stored.empty()) {
        const std::uint64_t s = p.stored.begin()->first;
        if (!have || s < oldest) {
          have = true;
          oldest = s;
        }
      }
    }
    if (!have) {
      return;
    }
    for (const auto& p : peers_) {
      if (!knows_all_through(p, oldest)) {
        return;
      }
    }
    round_to_run = oldest + 1;
  }

  std::vector<InboundMessage> inbox;
  inbox.reserve(peers_.size());
  if (round_to_run > 0) {
    const std::uint64_t idx = round_to_run - 1;
    for (auto& p : peers_) {  // peers_ sorted by id == simulator inbox order
      const auto it = p.stored.find(idx);
      if (it != p.stored.end()) {
        inbox.emplace_back(p.id, it->second.first, it->second.second);
        p.stored.erase(it);
      }
    }
  }

  const bool was_quiet = quiet_;
  InnerContext inner_ctx(ctx, round_to_run, std::move(inbox), peers_);
  inner_->on_round(inner_ctx);
  executed_ = round_to_run + 1;
  quiet_ = quiet_ || inner_->done();

  auto& out = inner_ctx.out();
  for (std::size_t i = 0; i < out.size(); ++i) {
    auto& buffer = out[i];
    if (!buffer.sent) {
      continue;
    }
    CBC_CHECK(!was_quiet,
              "reliable transport contract violated: inner program sent a "
              "message after done()");
    const std::uint64_t bits = buffer.writer.bit_size();
    if (inner_budget_bits_ != 0 && bits > inner_budget_bits_) {
      throw CongestViolationError(
          "CONGEST violation (inner): " + std::to_string(bits) +
          " bits on edge " + std::to_string(ctx.id()) + "->" +
          std::to_string(buffer.to) + " in inner round " +
          std::to_string(round_to_run) + " (budget " +
          std::to_string(inner_budget_bits_) + ")");
    }
    peers_[i].unacked.push_back(OutBatch{round_to_run, buffer.writer.bytes(),
                                         bits, false});
  }
}

void ReliableProgram::send_frames(NodeContext& ctx) {
  for (auto& p : peers_) {
    const bool terminal = terminal_with(p);
    const bool respond = p.polled_needy;
    p.polled_needy = false;
    if (terminal && !respond) {
      continue;
    }
    BitWriter frame;
    // Header (three varuints + flags) is < 160 bits; sizing up front keeps
    // frame assembly reallocation-free even with the payload batch.
    frame.reserve_bits(160 + (p.unacked.empty() ? 0 : p.unacked.front().bits));
    frame.write_varuint(p.known_prefix);
    frame.write_varuint(executed_);
    frame.write_bool(quiet_);
    frame.write_bool(terminal);  // the `satisfied` bit
    const bool has_batch = !p.unacked.empty();
    frame.write_bool(has_batch);
    if (has_batch) {
      auto& batch = p.unacked.front();
      if (batch.transmitted) {
        ++retransmissions_;
      }
      batch.transmitted = true;
      frame.write_varuint(batch.seq);
      frame.write_varuint(batch.bits);
      append_bits(frame, batch.bytes, batch.bits);
    }
    ctx.send(p.id, frame);
  }
}

void ReliableProgram::on_round(NodeContext& ctx) {
  if (!initialized_) {
    init_peers(ctx);
  }
  for (const auto& message : ctx.inbox()) {
    PeerState* peer = find_peer(message.from());
    CBC_CHECK(peer != nullptr, "reliable frame from non-neighbor");
    parse_frame(*peer, message);
  }
  maybe_execute_inner_round(ctx);
  send_frames(ctx);
}

void ReliableProgram::save_state(BitWriter& w) const {
  snap::put_bool(w, initialized_);
  snap::put_bool(w, quiet_);
  snap::put_u64(w, executed_);
  snap::put_u64(w, retransmissions_);
  snap::put_u64(w, peers_.size());
  for (const PeerState& p : peers_) {
    snap::put_u64(w, p.id);
    snap::put_u64(w, p.known_prefix);
    snap::put_u64(w, p.peer_produced);
    snap::put_bool(w, p.peer_quiet);
    snap::put_u64(w, p.stored.size());
    for (const auto& [seq, batch] : p.stored) {
      snap::put_u64(w, seq);
      snap::put_bits(w, batch.first.data(), batch.second);
    }
    snap::put_u64(w, p.unacked.size());
    for (const OutBatch& batch : p.unacked) {
      snap::put_u64(w, batch.seq);
      snap::put_bits(w, batch.bytes.data(), batch.bits);
      snap::put_bool(w, batch.transmitted);
    }
    snap::put_u64(w, p.acked);
    snap::put_bool(w, p.polled_needy);
  }
  const auto* inner_snapshottable =
      dynamic_cast<const Snapshottable*>(inner_.get());
  if (inner_snapshottable == nullptr) {
    throw SnapshotError(
        "cannot checkpoint: the program wrapped by ReliableProgram does not "
        "implement Snapshottable");
  }
  BitWriter blob;
  inner_snapshottable->save_state(blob);
  snap::put_bits(w, blob.data(), blob.bit_size());
}

void ReliableProgram::load_state(BitReader& r) {
  initialized_ = snap::get_bool(r);
  quiet_ = snap::get_bool(r);
  executed_ = snap::get_u64(r);
  retransmissions_ = snap::get_u64(r);
  const std::uint64_t num_peers = snap::get_count(r, 20);
  peers_.clear();
  peers_.reserve(num_peers);
  for (std::uint64_t i = 0; i < num_peers; ++i) {
    PeerState p;
    p.id = static_cast<NodeId>(snap::get_u64(r));
    p.known_prefix = snap::get_u64(r);
    p.peer_produced = snap::get_u64(r);
    p.peer_quiet = snap::get_bool(r);
    const std::uint64_t num_stored = snap::get_count(r, 14);
    for (std::uint64_t s = 0; s < num_stored; ++s) {
      const std::uint64_t seq = snap::get_u64(r);
      std::vector<std::uint8_t> bytes;
      const std::uint64_t bits = snap::get_bits(r, bytes);
      CBC_CHECK(
          p.stored
              .emplace(seq, std::make_pair(std::move(bytes),
                                           static_cast<std::size_t>(bits)))
              .second,
          "snapshot stores one reliable-transport batch twice");
    }
    const std::uint64_t num_unacked = snap::get_count(r, 15);
    for (std::uint64_t s = 0; s < num_unacked; ++s) {
      OutBatch batch;
      batch.seq = snap::get_u64(r);
      const std::uint64_t bits = snap::get_bits(r, batch.bytes);
      batch.bits = static_cast<std::size_t>(bits);
      batch.transmitted = snap::get_bool(r);
      p.unacked.push_back(std::move(batch));
    }
    p.acked = snap::get_u64(r);
    p.polled_needy = snap::get_bool(r);
    peers_.push_back(std::move(p));
  }
  auto* inner_snapshottable = dynamic_cast<Snapshottable*>(inner_.get());
  if (inner_snapshottable == nullptr) {
    throw SnapshotError(
        "cannot resume: the program wrapped by ReliableProgram does not "
        "implement Snapshottable");
  }
  std::vector<std::uint8_t> blob;
  const std::uint64_t blob_bits = snap::get_bits(r, blob);
  BitReader inner_reader(blob.data(), static_cast<std::size_t>(blob_bits));
  inner_snapshottable->load_state(inner_reader);
  CBC_CHECK(inner_reader.remaining() == 0,
            "snapshot inner-program blob has unconsumed bits");
}

}  // namespace congestbc
