// Deterministic fault injection for the CONGEST simulator.
//
// The paper's model (§III-A) assumes perfectly reliable synchronous
// delivery; this layer lets every experiment ask "and what if it isn't?".
// A FaultPlan is a *seeded, fully reproducible* schedule of adversities:
//   * per-message uniform drop / duplicate / one-round-delay faults,
//     decided by hashing (seed, round, from, to) — no shared RNG stream,
//     so the decision for a message never depends on delivery order and
//     two runs with the same seed are bit-for-bit identical;
//   * per-edge link outages (the link is down for a round interval; every
//     physical message on it, either direction, is lost);
//   * node crash / crash-restart windows (a crashed node freezes: it does
//     not run its program, sends nothing, and loses the messages that
//     arrive while it is down).
// The Network consults the plan at delivery time and counts every injected
// event in RunMetrics (dropped/duplicated/delayed messages, crashed node
// rounds); a TraceSink observes each event via on_fault().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace congestbc {

/// Inclusive round interval [first_round, last_round]; last_round ==
/// FaultPlan::kForever means the fault never heals (a permanent crash or
/// link cut — the ingredient of a crash-partition).
struct OutageWindow {
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;

  bool covers(std::uint64_t round) const {
    return round >= first_round && round <= last_round;
  }
  friend bool operator==(const OutageWindow&, const OutageWindow&) = default;
};

/// One undirected link down for a window (both directions lose traffic).
struct LinkFault {
  Edge edge;
  OutageWindow window;
  friend bool operator==(const LinkFault&, const LinkFault&) = default;
};

/// One node crashed for a window (crash-restart when the window ends).
struct NodeFault {
  NodeId node = 0;
  OutageWindow window;
  friend bool operator==(const NodeFault&, const NodeFault&) = default;
};

/// A complete, reproducible fault schedule.  Empty plan == the paper's
/// reliable network; the simulator's fault path is bypassed entirely.
struct FaultPlan {
  static constexpr std::uint64_t kForever = ~0ull;

  std::uint64_t seed = 0;
  /// Per physical message, mutually exclusive (probabilities must sum to
  /// at most 1; one hash draw decides drop vs duplicate vs delay).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double delay_probability = 0.0;
  std::vector<LinkFault> link_faults;
  std::vector<NodeFault> node_faults;

  /// True when the plan injects nothing at all.  Inline so header-only
  /// consumers (snapshot/fingerprint.cpp, which must not link the congest
  /// library it sits below) can call it.
  bool empty() const {
    return drop_probability == 0.0 && duplicate_probability == 0.0 &&
           delay_probability == 0.0 && link_faults.empty() &&
           node_faults.empty();
  }

  /// Throws PreconditionError on out-of-range probabilities or inverted
  /// windows.
  void validate() const;

  /// Uniform message-drop plan (the workhorse of the resilience benches).
  static FaultPlan uniform_drop(std::uint64_t seed, double probability);

  /// Adversarial plan that drops every message — the canonical stall.
  static FaultPlan drop_everything();

  /// Parses a comma-separated spec, e.g. the CLI's --faults value:
  ///   "drop=0.1,dup=0.01,delay=0.05,seed=7"
  ///   "crash=3:10-50,crash=9:100-inf,link=0-1:5-20,drop=0.02"
  /// Keys: drop / dup / delay (probabilities), seed (u64),
  /// crash=NODE:FIRST-LAST, link=U-V:FIRST-LAST ("inf" = forever).
  static FaultPlan parse(const std::string& spec);

  /// One-line human-readable description (CLI banners, bench tables).
  std::string describe() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// What happened to one physical message (or one crashed-node round).
enum class FaultKind : std::uint8_t {
  kDrop,           ///< message lost (hash-drawn)
  kDuplicate,      ///< message delivered twice in the same round
  kDelay,          ///< message delivered one round late
  kLinkDown,       ///< message lost to a scheduled link outage
  kReceiverCrash,  ///< message lost because the receiver was crashed
};

const char* to_string(FaultKind kind);

/// One injected fault, as observed by a TraceSink.
struct FaultEvent {
  std::uint64_t round = 0;
  NodeId from = 0;
  NodeId to = 0;
  FaultKind kind = FaultKind::kDrop;
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A FaultPlan compiled against a graph for O(1)-ish delivery-time
/// queries.  Stateless between queries: every answer is a pure function
/// of (plan, round, edge), which is what makes replay exact.
class FaultInjector {
 public:
  enum class Delivery : std::uint8_t { kDeliver, kDrop, kDuplicate, kDelay };

  /// Validates the plan and that scheduled faults reference real
  /// nodes/edges of `graph` (throws PreconditionError otherwise).
  FaultInjector(const FaultPlan& plan, const Graph& graph);

  bool node_up(NodeId v, std::uint64_t round) const;
  bool link_up(NodeId u, NodeId v, std::uint64_t round) const;

  /// The fate of the physical message `from -> to` sent in `round`,
  /// drawn from the seeded hash (link/node outages are not consulted
  /// here — the Network checks those separately so it can attribute the
  /// loss to the right FaultKind).
  Delivery classify(std::uint64_t round, NodeId from, NodeId to) const;

  /// True when the *permanent* faults (windows reaching kForever) leave
  /// the surviving subgraph disconnected — the crash-partition class the
  /// watchdog reports (core/runner.hpp).
  bool permanently_partitions() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  const Graph* graph_;
  std::vector<std::vector<OutageWindow>> node_windows_;   // by node id
  std::unordered_map<std::uint64_t, std::vector<OutageWindow>> link_windows_;
};

}  // namespace congestbc
