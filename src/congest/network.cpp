#include "congest/network.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"
#include "common/bit_io.hpp"
#include "congest/trace.hpp"

namespace congestbc {

namespace {

std::uint64_t directed_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// One queued logical payload.
struct PendingSend {
  NodeId to;
  std::vector<std::uint8_t> bytes;
  std::size_t bits;
};

/// Concrete per-node context; reused across rounds.
class ContextImpl final : public NodeContext {
 public:
  ContextImpl(const Graph& graph, NodeId id)
      : graph_(&graph), id_(id) {}

  NodeId id() const override { return id_; }
  std::uint32_t num_nodes() const override { return graph_->num_nodes(); }
  std::span<const NodeId> neighbors() const override {
    return graph_->neighbors(id_);
  }
  std::uint64_t round() const override { return round_; }
  const std::vector<InboundMessage>& inbox() const override { return inbox_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    CBC_EXPECTS(graph_->has_edge(id_, neighbor),
                "node tried to send to a non-neighbor");
    outbox_.push_back(PendingSend{neighbor, payload.bytes(), payload.bit_size()});
  }

  // -- harness side --
  void begin_round(std::uint64_t round, std::vector<InboundMessage> inbox) {
    round_ = round;
    inbox_ = std::move(inbox);
    outbox_.clear();
  }
  std::vector<PendingSend>& outbox() { return outbox_; }

 private:
  const Graph* graph_;
  NodeId id_;
  std::uint64_t round_ = 0;
  std::vector<InboundMessage> inbox_;
  std::vector<PendingSend> outbox_;
};

/// Appends `bits` bits of `src` to `writer` (bulk copy in 64-bit chunks).
void append_bits(BitWriter& writer, const std::vector<std::uint8_t>& src,
                 std::size_t bits) {
  BitReader reader(src, bits);
  std::size_t remaining = bits;
  while (remaining > 0) {
    const unsigned chunk = remaining >= 64 ? 64u : static_cast<unsigned>(remaining);
    writer.write(reader.read(chunk), chunk);
    remaining -= chunk;
  }
}

}  // namespace

std::uint64_t congest_budget_bits(std::uint32_t num_nodes) {
  const std::uint64_t log_n = ceil_log2(num_nodes < 2 ? 2 : num_nodes);
  // The floor of 8 "logical bits" keeps tiny graphs workable: the
  // soft-float payload has a constant-bits floor (mantissa >= 8), so the
  // O(log N) budget needs the same floor on its constant.
  return 16 * std::max<std::uint64_t>(log_n, 8);
}

Network::Network(const Graph& graph, NetworkConfig config)
    : graph_(&graph), config_(config) {
  CBC_EXPECTS(graph.num_nodes() >= 1, "network needs at least one node");
}

void Network::register_cut(const std::vector<Edge>& cut_edges) {
  for (const auto& e : cut_edges) {
    CBC_EXPECTS(graph_->has_edge(e.u, e.v), "cut edge not present in graph");
    cut_keys_.insert(directed_key(e.u, e.v));
    cut_keys_.insert(directed_key(e.v, e.u));
  }
}

RunMetrics Network::run(const ProgramFactory& factory) {
  const NodeId n = graph_->num_nodes();
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(factory(v));
    CBC_CHECK(programs.back() != nullptr, "factory returned null program");
  }
  return run(programs);
}

RunMetrics Network::run(std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const NodeId n = graph_->num_nodes();
  CBC_EXPECTS(programs.size() == n, "one program per node required");
  std::vector<ContextImpl> contexts;
  contexts.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    CBC_EXPECTS(programs[v] != nullptr, "null program");
    contexts.emplace_back(*graph_, v);
  }

  RunMetrics metrics;
  std::vector<std::vector<InboundMessage>> mailboxes(n);
  bool messages_in_flight = false;

  for (std::uint64_t round = 0;; ++round) {
    CBC_CHECK(round < config_.max_rounds,
              "simulation exceeded max_rounds = " +
                  std::to_string(config_.max_rounds));

    // Check termination: all done and nothing queued for delivery.
    if (!messages_in_flight) {
      const bool all_done =
          std::all_of(programs.begin(), programs.end(),
                      [](const auto& p) { return p->done(); });
      if (all_done) {
        metrics.rounds = round;
        return metrics;
      }
    }

    // Run every node on this round's inbox.
    for (NodeId v = 0; v < n; ++v) {
      contexts[v].begin_round(round, std::move(mailboxes[v]));
      mailboxes[v].clear();
      programs[v]->on_round(contexts[v]);
    }

    // Bundle outboxes into physical messages and account traffic.
    RoundStats stats;
    messages_in_flight = false;
    for (NodeId v = 0; v < n; ++v) {
      auto& outbox = contexts[v].outbox();
      if (outbox.empty()) {
        continue;
      }
      // Group logical sends by destination, preserving send order.
      std::stable_sort(outbox.begin(), outbox.end(),
                       [](const PendingSend& x, const PendingSend& y) {
                         return x.to < y.to;
                       });
      std::size_t i = 0;
      while (i < outbox.size()) {
        const NodeId to = outbox[i].to;
        BitWriter bundle;
        std::uint64_t logical = 0;
        while (i < outbox.size() && outbox[i].to == to) {
          append_bits(bundle, outbox[i].bytes, outbox[i].bits);
          ++logical;
          ++i;
        }
        const std::uint64_t bits = bundle.bit_size();
        if (config_.bits_per_edge_per_round != 0) {
          CBC_CHECK(bits <= config_.bits_per_edge_per_round,
                    "CONGEST violation: " + std::to_string(bits) +
                        " bits on edge " + std::to_string(v) + "->" +
                        std::to_string(to) + " in round " +
                        std::to_string(round) + " (budget " +
                        std::to_string(config_.bits_per_edge_per_round) + ")");
        }
        stats.physical_messages += 1;
        stats.logical_messages += logical;
        stats.bits += bits;
        stats.max_bits_on_edge = std::max(stats.max_bits_on_edge, bits);
        stats.max_logical_on_edge = std::max(stats.max_logical_on_edge, logical);
        if (!cut_keys_.empty() && cut_keys_.count(directed_key(v, to)) != 0) {
          metrics.cut_bits += bits;
        }
        if (config_.trace != nullptr) {
          config_.trace->on_physical_message(TraceEvent{
              round, v, to, static_cast<std::uint32_t>(bits),
              static_cast<std::uint32_t>(logical)});
        }
        mailboxes[to].emplace_back(v, bundle.bytes(), bundle.bit_size());
        messages_in_flight = true;
      }
    }

    metrics.total_physical_messages += stats.physical_messages;
    metrics.total_logical_messages += stats.logical_messages;
    metrics.total_bits += stats.bits;
    metrics.max_bits_on_edge_round =
        std::max(metrics.max_bits_on_edge_round, stats.max_bits_on_edge);
    metrics.max_logical_on_edge_round =
        std::max(metrics.max_logical_on_edge_round, stats.max_logical_on_edge);
    if (config_.record_per_round) {
      metrics.per_round.push_back(stats);
    }
  }
}

}  // namespace congestbc
