#include "congest/network.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <limits>
#include <istream>
#include <optional>
#include <ostream>
#include <queue>
#include <string>
#include <utility>

#include "common/assert.hpp"
#include "common/bit_io.hpp"
#include "congest/arena.hpp"
#include "congest/trace.hpp"
#include "core/thread_pool.hpp"
#include "obs/span.hpp"
#include "snapshot/fingerprint.hpp"
#include "snapshot/snapshot.hpp"
#include "snapshot/snapshottable.hpp"

namespace congestbc {

namespace {

// ---------------------------------------------------------------- engine

/// Per-node context of the zero-allocation engine.  Sends append directly
/// into per-neighbor bundle slots (indexed by adjacency position, so the
/// merge phase needs no sort), and the inbox buffer is recycled with the
/// mailbox every round.  Each node's context is touched only by the lane
/// executing that node, plus the sequential merge phase — never two lanes
/// at once.
class SlotContext final : public NodeContext {
 public:
  struct Slot {
    BitWriter writer;
    std::uint64_t logical = 0;
  };

  SlotContext(const Graph& graph, NodeId id)
      : graph_(&graph), id_(id), neighbors_(graph.neighbors(id)) {
    slots_.resize(neighbors_.size());
  }

  NodeId id() const override { return id_; }
  std::uint32_t num_nodes() const override { return graph_->num_nodes(); }
  std::span<const NodeId> neighbors() const override { return neighbors_; }
  std::uint64_t round() const override { return round_; }
  const std::vector<InboundMessage>& inbox() const override { return inbox_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
    CBC_EXPECTS(it != neighbors_.end() && *it == neighbor,
                "node tried to send to a non-neighbor");
    Slot& slot = slots_[static_cast<std::size_t>(it - neighbors_.begin())];
    slot.writer.append(payload.data(), payload.bit_size());
    slot.logical += 1;
  }

  // -- harness side --
  /// Starts a round: takes `mailbox`'s messages and leaves it the old
  /// (cleared) inbox buffer, so the two vectors ping-pong and keep their
  /// capacities — no steady-state allocation.
  void begin_round(std::uint64_t round, std::vector<InboundMessage>& mailbox) {
    round_ = round;
    inbox_.clear();
    inbox_.swap(mailbox);
    clear_slots();
  }
  /// A crashed node's round: empty inbox, stale outbox discarded.
  void begin_round_empty(std::uint64_t round) {
    round_ = round;
    inbox_.clear();
    clear_slots();
  }
  std::vector<Slot>& slots() { return slots_; }

 private:
  void clear_slots() {
    for (Slot& s : slots_) {
      if (s.logical != 0) {
        s.writer.clear();
        s.logical = 0;
      }
    }
  }

  const Graph* graph_;
  NodeId id_;
  std::span<const NodeId> neighbors_;
  std::uint64_t round_ = 0;
  std::vector<InboundMessage> inbox_;
  std::vector<Slot> slots_;
};

// ------------------------------------------------- frontier engine lane

/// One lane's execution scratch for the frontier engine: a reusable slot
/// slab (sized once to the graph's maximum degree), the ping-pong inbox
/// buffer, and the outbox of bundles this lane produced this round.  A
/// lane processes a contiguous chunk of the sorted active set, flushing
/// each node's bundles into the lane-private arena before moving on — so
/// the parallel phase shares no mutable cache line across lanes, and the
/// sequential merge replays lane outboxes in lane order, which *is*
/// ascending (node, adjacency) order because chunks are contiguous ranges
/// of a sorted list.
class LaneContext final : public NodeContext {
 public:
  struct Slot {
    BitWriter writer;
    std::uint64_t logical = 0;
  };
  /// One flushed bundle: where it came from, which adjacency slot (the
  /// merge derives the destination), and a view into the lane arena.
  struct OutRec {
    NodeId from;
    std::uint32_t adj_index;
    const std::uint8_t* data;
    std::uint64_t bits;
    std::uint64_t logical;
  };

  explicit LaneContext(const Graph& graph) : graph_(&graph) {
    slots_.resize(graph.max_degree());
  }

  NodeId id() const override { return id_; }
  std::uint32_t num_nodes() const override { return graph_->num_nodes(); }
  std::span<const NodeId> neighbors() const override { return neighbors_; }
  std::uint64_t round() const override { return round_; }
  const std::vector<InboundMessage>& inbox() const override { return inbox_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
    CBC_EXPECTS(it != neighbors_.end() && *it == neighbor,
                "node tried to send to a non-neighbor");
    Slot& slot = slots_[static_cast<std::size_t>(it - neighbors_.begin())];
    slot.writer.append(payload.data(), payload.bit_size());
    slot.logical += 1;
  }

  // -- harness side --
  /// Points the context at node `v` and takes its mailbox; the mailbox is
  /// left holding the previously used (cleared) inbox buffer, so the
  /// buffers circulate within the lane and keep their capacities.
  void begin(NodeId v, std::uint64_t round,
             std::vector<InboundMessage>& mailbox) {
    id_ = v;
    neighbors_ = graph_->neighbors(v);
    round_ = round;
    inbox_.clear();
    inbox_.swap(mailbox);
  }

  /// Moves the current node's non-empty bundles into `arena` + the lane
  /// outbox and clears the touched slots, leaving the slab ready for the
  /// lane's next node.
  void flush(PayloadArena& arena) {
    for (std::size_t i = 0; i < neighbors_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.logical == 0) {
        continue;
      }
      const std::uint64_t bits = slot.writer.bit_size();
      const std::size_t nbytes = (bits + 7) / 8;
      std::uint8_t* mem = arena.allocate(nbytes);
      if (nbytes != 0) {
        std::memcpy(mem, slot.writer.data(), nbytes);
      }
      outbox_.push_back(OutRec{id_, static_cast<std::uint32_t>(i), mem, bits,
                               slot.logical});
      slot.writer.clear();
      slot.logical = 0;
    }
  }

  std::vector<OutRec>& outbox() { return outbox_; }

 private:
  const Graph* graph_;
  NodeId id_ = 0;
  std::span<const NodeId> neighbors_;
  std::uint64_t round_ = 0;
  std::vector<InboundMessage> inbox_;
  std::vector<Slot> slots_;
  std::vector<OutRec> outbox_;
};

// ------------------------------------------------------- legacy baseline

/// One queued logical payload (legacy engine).
struct PendingSend {
  NodeId to;
  std::vector<std::uint8_t> bytes;
  std::size_t bits;
};

/// The PR-1 per-node context: owning per-send heap copies, kept verbatim
/// as the reproducible baseline behind NetworkConfig::legacy_engine.
class LegacyContext final : public NodeContext {
 public:
  LegacyContext(const Graph& graph, NodeId id) : graph_(&graph), id_(id) {}

  NodeId id() const override { return id_; }
  std::uint32_t num_nodes() const override { return graph_->num_nodes(); }
  std::span<const NodeId> neighbors() const override {
    return graph_->neighbors(id_);
  }
  std::uint64_t round() const override { return round_; }
  const std::vector<InboundMessage>& inbox() const override { return inbox_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    CBC_EXPECTS(graph_->has_edge(id_, neighbor),
                "node tried to send to a non-neighbor");
    outbox_.push_back(PendingSend{neighbor, payload.bytes(), payload.bit_size()});
  }

  // -- harness side --
  void begin_round(std::uint64_t round, std::vector<InboundMessage> inbox) {
    round_ = round;
    inbox_ = std::move(inbox);
    outbox_.clear();
  }
  std::vector<PendingSend>& outbox() { return outbox_; }

 private:
  const Graph* graph_;
  NodeId id_;
  std::uint64_t round_ = 0;
  std::vector<InboundMessage> inbox_;
  std::vector<PendingSend> outbox_;
};

// ------------------------------------------------ snapshot field helpers
//
// The graph and fault-plan fingerprints recorded in the engine section
// live in snapshot/fingerprint.hpp — shared with the service layer's
// result cache so "safe to resume" and "safe to serve from cache" key on
// the same bytes.  Resuming against a different graph would silently
// misroute every restored message, so load_snapshot() refuses unless
// graph_fingerprint matches; same for the fault plan, whose stateless
// injector makes the plan parameters the complete RNG cursor.

void put_metrics(BitWriter& w, const RunMetrics& m) {
  snap::put_u64(w, m.rounds);
  snap::put_u64(w, m.total_physical_messages);
  snap::put_u64(w, m.total_logical_messages);
  snap::put_u64(w, m.total_bits);
  snap::put_u64(w, m.max_bits_on_edge_round);
  snap::put_u64(w, m.max_logical_on_edge_round);
  snap::put_u64(w, m.cut_bits);
  snap::put_u64(w, m.dropped_messages);
  snap::put_u64(w, m.duplicated_messages);
  snap::put_u64(w, m.delayed_messages);
  snap::put_u64(w, m.crashed_node_rounds);
  snap::put_u64(w, m.per_round.size());
  for (const RoundStats& s : m.per_round) {
    snap::put_u64(w, s.physical_messages);
    snap::put_u64(w, s.logical_messages);
    snap::put_u64(w, s.bits);
    snap::put_u64(w, s.max_bits_on_edge);
    snap::put_u64(w, s.max_logical_on_edge);
  }
}

RunMetrics get_metrics(BitReader& r) {
  RunMetrics m;
  m.rounds = snap::get_u64(r);
  m.total_physical_messages = snap::get_u64(r);
  m.total_logical_messages = snap::get_u64(r);
  m.total_bits = snap::get_u64(r);
  m.max_bits_on_edge_round = snap::get_u64(r);
  m.max_logical_on_edge_round = snap::get_u64(r);
  m.cut_bits = snap::get_u64(r);
  m.dropped_messages = snap::get_u64(r);
  m.duplicated_messages = snap::get_u64(r);
  m.delayed_messages = snap::get_u64(r);
  m.crashed_node_rounds = snap::get_u64(r);
  // Each RoundStats is five varuints of >= 7 bits each.
  const std::uint64_t rounds = snap::get_count(r, 35);
  m.per_round.reserve(rounds);
  for (std::uint64_t i = 0; i < rounds; ++i) {
    RoundStats s;
    s.physical_messages = snap::get_u64(r);
    s.logical_messages = snap::get_u64(r);
    s.bits = snap::get_u64(r);
    s.max_bits_on_edge = snap::get_u64(r);
    s.max_logical_on_edge = snap::get_u64(r);
    m.per_round.push_back(s);
  }
  return m;
}

/// Serializes one pending message: sender id, bit length, raw payload
/// bits.  Works for both storage modes — arena views are read through
/// reader() and thus materialize into the snapshot byte-for-byte.
void put_message(BitWriter& w, const InboundMessage& msg) {
  snap::put_u64(w, msg.from());
  snap::put_u64(w, msg.bit_size());
  BitReader payload = msg.reader();
  std::size_t left = msg.bit_size();
  while (left > 0) {
    const unsigned chunk = left >= 64 ? 64u : static_cast<unsigned>(left);
    w.write(payload.read(chunk), chunk);
    left -= chunk;
  }
}

/// Restores one pending message for destination `to` as an *owning*
/// InboundMessage (the arena it once viewed is gone).  Validates the
/// sender is a real neighbor — a corrupt `from` would otherwise plant a
/// message the CONGEST topology cannot produce.
InboundMessage get_message(BitReader& r, const Graph& g, NodeId to) {
  const std::uint64_t from = snap::get_u64(r);
  if (from >= g.num_nodes() ||
      !g.has_edge(static_cast<NodeId>(from), to)) {
    throw SnapshotError("corrupt snapshot: message for node " +
                        std::to_string(to) + " claims non-neighbor sender " +
                        std::to_string(from));
  }
  const std::uint64_t bits = snap::get_u64(r);
  if (bits > r.remaining()) {
    throw SnapshotError("corrupt snapshot: truncated message payload");
  }
  BitWriter payload;
  payload.reserve_bits(static_cast<std::size_t>(bits));
  std::uint64_t left = bits;
  while (left > 0) {
    const unsigned chunk = left >= 64 ? 64u : static_cast<unsigned>(left);
    payload.write(r.read(chunk), chunk);
    left -= chunk;
  }
  return InboundMessage(static_cast<NodeId>(from), payload.bytes(),
                        static_cast<std::size_t>(bits));
}

}  // namespace

/// Everything load_snapshot() parses, staged until the next run()
/// consumes it at its top-of-round boundary.
struct Network::ResumeState {
  struct Blob {
    std::vector<std::uint8_t> bytes;
    std::uint64_t bits = 0;
  };

  std::uint64_t round = 0;
  std::uint64_t stall_rounds = 0;
  RunMetrics metrics;
  std::vector<std::vector<InboundMessage>> mailboxes;
  std::vector<std::vector<InboundMessage>> delayed;
  std::vector<Blob> programs;
};

Network::~Network() = default;

std::uint64_t congest_budget_bits(std::uint32_t num_nodes) {
  const std::uint64_t log_n = ceil_log2(num_nodes < 2 ? 2 : num_nodes);
  // The floor of 8 "logical bits" keeps tiny graphs workable: the
  // soft-float payload has a constant-bits floor (mantissa >= 8), so the
  // O(log N) budget needs the same floor on its constant.
  return 16 * std::max<std::uint64_t>(log_n, 8);
}

Network::Network(const Graph& graph, NetworkConfig config)
    : graph_(&graph), config_(config) {
  CBC_EXPECTS(graph.num_nodes() >= 1, "network needs at least one node");
}

void Network::register_cut(const std::vector<Edge>& cut_edges) {
  if (cut_flags_.empty()) {
    cut_flags_.assign(graph_->num_directed_edges(), 0);
  }
  for (const auto& e : cut_edges) {
    CBC_EXPECTS(graph_->has_edge(e.u, e.v), "cut edge not present in graph");
    cut_flags_[graph_->adjacency_offset(e.u) +
               graph_->neighbor_index(e.u, e.v)] = 1;
    cut_flags_[graph_->adjacency_offset(e.v) +
               graph_->neighbor_index(e.v, e.u)] = 1;
    has_cut_ = true;
  }
}

RunMetrics Network::run(const ProgramFactory& factory) {
  const NodeId n = graph_->num_nodes();
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(factory(v));
    CBC_CHECK(programs.back() != nullptr, "factory returned null program");
  }
  return run(programs);
}

RunMetrics Network::run(std::vector<std::unique_ptr<NodeProgram>>& programs) {
  suspended_payload_.reset();
  resumed_from_round_.reset();
  checkpoints_written_.clear();
  if (config_.legacy_engine || config_.engine == EngineKind::kLegacy) {
    return run_legacy(programs);
  }
  if (config_.engine == EngineKind::kArena) {
    return run_engine(programs);
  }
  return run_frontier(programs);
}

void Network::save_snapshot(std::ostream& out) const {
  if (suspended_payload_ == nullptr) {
    throw SnapshotError(
        "no suspended state to snapshot: save_snapshot() is only available "
        "after a run() returned because of NetworkConfig::halt_at_round");
  }
  write_snapshot_container(out, *suspended_payload_);
}

void Network::load_snapshot(std::istream& in) {
  const SnapshotPayload payload = read_snapshot_container(in);
  auto state = std::make_unique<ResumeState>();
  const NodeId n = graph_->num_nodes();
  try {
    BitReader r = payload.reader();
    if (snap::get_u64(r) != graph_fingerprint(*graph_)) {
      throw SnapshotError(
          "snapshot rejected: it was taken on a different graph");
    }
    if (snap::get_u64(r) != fault_fingerprint(config_.faults)) {
      throw SnapshotError(
          "snapshot rejected: it was taken under a different fault plan");
    }
    if (snap::get_u64(r) != config_.bits_per_edge_per_round) {
      throw SnapshotError(
          "snapshot rejected: it was taken under a different CONGEST budget");
    }
    if (snap::get_bool(r) != config_.record_per_round) {
      throw SnapshotError(
          "snapshot rejected: record_per_round differs from the original "
          "run (per-round metrics would diverge from the uninterrupted run)");
    }
    state->round = snap::get_u64(r);
    if (state->round == 0) {
      throw SnapshotError(
          "corrupt snapshot: claims a round-0 boundary, which no writer "
          "produces");
    }
    state->stall_rounds = snap::get_u64(r);
    state->metrics = get_metrics(r);
    state->mailboxes.resize(n);
    state->delayed.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      // A message is at least a varuint sender + varuint length (7 bits
      // each).
      const std::uint64_t inbox_count = snap::get_count(r, 14);
      state->mailboxes[v].reserve(inbox_count);
      for (std::uint64_t i = 0; i < inbox_count; ++i) {
        state->mailboxes[v].push_back(get_message(r, *graph_, v));
      }
      const std::uint64_t delayed_count = snap::get_count(r, 14);
      state->delayed[v].reserve(delayed_count);
      for (std::uint64_t i = 0; i < delayed_count; ++i) {
        state->delayed[v].push_back(get_message(r, *graph_, v));
      }
    }
    state->programs.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      state->programs[v].bits = snap::get_bits(r, state->programs[v].bytes);
    }
    if (r.remaining() != 0) {
      throw SnapshotError("corrupt snapshot: " +
                          std::to_string(r.remaining()) +
                          " trailing bits after the last section");
    }
  } catch (const InvariantError& e) {
    // The bit readers throw InvariantError past-the-end; on this path
    // that means malformed input, not a library bug.
    throw SnapshotError(std::string("corrupt snapshot: ") + e.what());
  }
  pending_resume_ = std::move(state);
}

BitWriter Network::encode_snapshot(
    std::uint64_t round, std::uint64_t stall_rounds,
    const std::vector<std::vector<InboundMessage>>& mailboxes,
    const std::vector<std::vector<InboundMessage>>& delayed,
    const std::vector<std::unique_ptr<NodeProgram>>& programs) const {
  BitWriter w;
  snap::put_u64(w, graph_fingerprint(*graph_));
  snap::put_u64(w, fault_fingerprint(config_.faults));
  snap::put_u64(w, config_.bits_per_edge_per_round);
  snap::put_bool(w, config_.record_per_round);
  snap::put_u64(w, round);
  snap::put_u64(w, stall_rounds);
  put_metrics(w, metrics_);
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    snap::put_u64(w, mailboxes[v].size());
    for (const InboundMessage& msg : mailboxes[v]) {
      put_message(w, msg);
    }
    snap::put_u64(w, delayed[v].size());
    for (const InboundMessage& msg : delayed[v]) {
      put_message(w, msg);
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto* snapshottable =
        dynamic_cast<const Snapshottable*>(programs[v].get());
    if (snapshottable == nullptr) {
      throw SnapshotError(
          "cannot checkpoint: program on node " + std::to_string(v) +
          " does not implement Snapshottable");
    }
    BitWriter blob;
    snapshottable->save_state(blob);
    snap::put_bits(w, blob.data(), blob.bit_size());
  }
  return w;
}

bool Network::checkpoint_or_halt(
    std::uint64_t round, std::uint64_t start_round, std::uint64_t stall_rounds,
    const std::vector<std::vector<InboundMessage>>& mailboxes,
    const std::vector<std::vector<InboundMessage>>& delayed,
    const std::vector<std::unique_ptr<NodeProgram>>& programs) {
  // Neither fires at the boundary the run started from: round 0 would
  // snapshot the trivial initial state, and a resumed run re-entering its
  // own boundary would rewrite the checkpoint it just loaded (or suspend
  // instantly, making --resume after --halt-at-round impossible).
  const bool halt =
      round != start_round &&
      ((config_.halt_at_round != 0 && round == config_.halt_at_round) ||
       (config_.halt_request != nullptr &&
        config_.halt_request->load(std::memory_order_relaxed)));
  const bool checkpoint = config_.checkpoint.enabled() && round != 0 &&
                          round != start_round &&
                          round % config_.checkpoint.every_rounds == 0;
  if (!halt && !checkpoint) {
    return false;
  }
  BitWriter payload =
      encode_snapshot(round, stall_rounds, mailboxes, delayed, programs);
  if (checkpoint || (halt && !config_.checkpoint.directory.empty())) {
    checkpoints_written_.push_back(
        write_checkpoint_file(config_.checkpoint.directory, round, payload,
                              config_.checkpoint.keep_last));
  }
  if (halt) {
    suspended_payload_ = std::make_unique<BitWriter>(std::move(payload));
    return true;
  }
  return false;
}

std::uint64_t Network::apply_pending_resume(
    std::vector<std::vector<InboundMessage>>& mailboxes,
    std::vector<std::vector<InboundMessage>>& delayed,
    std::vector<std::unique_ptr<NodeProgram>>& programs,
    std::uint64_t& stall_rounds) {
  if (pending_resume_ == nullptr) {
    return 0;
  }
  const std::unique_ptr<ResumeState> state = std::move(pending_resume_);
  const NodeId n = graph_->num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    auto* snapshottable = dynamic_cast<Snapshottable*>(programs[v].get());
    if (snapshottable == nullptr) {
      throw SnapshotError("cannot resume: program on node " +
                          std::to_string(v) +
                          " does not implement Snapshottable");
    }
    BitReader r(state->programs[v].bytes.data(),
                static_cast<std::size_t>(state->programs[v].bits));
    try {
      snapshottable->load_state(r);
    } catch (const InvariantError& e) {
      throw SnapshotError(
          std::string("corrupt snapshot: program blob of node ") +
          std::to_string(v) + " is malformed: " + e.what());
    }
    if (r.remaining() != 0) {
      throw SnapshotError(
          "corrupt snapshot: program blob of node " + std::to_string(v) +
          " has " + std::to_string(r.remaining()) + " unconsumed bits");
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    mailboxes[v] = std::move(state->mailboxes[v]);
    delayed[v] = std::move(state->delayed[v]);
  }
  metrics_ = std::move(state->metrics);
  stall_rounds = state->stall_rounds;
  resumed_from_round_ = state->round;
  return state->round;
}

RunMetrics Network::run_engine(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const NodeId n = graph_->num_nodes();
  CBC_EXPECTS(programs.size() == n, "one program per node required");
  std::vector<SlotContext> contexts;
  contexts.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    CBC_EXPECTS(programs[v] != nullptr, "null program");
    contexts.emplace_back(*graph_, v);
  }

  std::optional<FaultInjector> injector;
  if (config_.faults != nullptr && !config_.faults->empty()) {
    injector.emplace(*config_.faults, *graph_);
  }

  metrics_ = RunMetrics{};
  arena_block_allocations_ = 0;
  // Double-buffered payload storage: round r's deliveries live in
  // arena[r & 1], are read by the programs in round r + 1, and the buffer
  // is reclaimed at the delivery phase of round r + 2 — strictly after
  // the last reader (one-round delay faults are re-copied into owning
  // storage, so they never outlive the window).
  PayloadArena arenas[2];
  std::vector<std::vector<InboundMessage>> mailboxes(n);
  // Messages hit by a kDelay fault in round r sit here through round r+1's
  // delivery phase and land in the inbox read at round r+2 (one round late).
  std::vector<std::vector<InboundMessage>> delayed_pending(n);
  for (NodeId v = 0; v < n; ++v) {
    // A node receives at most one bundle per incident edge per round (one
    // more under a duplicate fault) — sizing by degree makes mailbox
    // growth a warm-up cost, not a steady-state one.
    mailboxes[v].reserve(graph_->degree(v) + 1);
  }
  // Exact count of messages sitting in mailboxes + delay buffers; replaces
  // the legacy engine's O(N) all-mailbox rescan every round.
  std::uint64_t in_flight = 0;

  // Resume (if a snapshot is staged): restores programs, mailboxes, delay
  // buffers, metrics, and the watchdog counter, and moves the start round.
  std::uint64_t stall_rounds = 0;
  const std::uint64_t start_round =
      apply_pending_resume(mailboxes, delayed_pending, programs, stall_rounds);
  for (NodeId v = 0; v < n; ++v) {
    in_flight += mailboxes[v].size() + delayed_pending[v].size();
  }

  const unsigned lanes =
      config_.threads == 0 ? ThreadPool::hardware_threads() : config_.threads;
  std::optional<ThreadPool> pool;
  if (lanes > 1 && n > 1) {
    pool.emplace(lanes);
  }
  std::vector<std::uint8_t> node_up;
  if (injector) {
    node_up.assign(n, 1);
  }

  // Stall watchdog state.  Progress means: the done() count changed, a
  // program's progress_marker() advanced, or a live node *without* a
  // marker consumed a message.  Mere transmission is never progress —
  // under a drop-everything plan senders stay busy forever while the
  // computation goes nowhere — and consumption by marker-bearing programs
  // (the reliable transport) is ignored too, because their control
  // chatter keeps flowing even when retransmitting into a dead peer.
  // After a resume the markers and done count are re-read from the
  // restored programs — identical to what the uninterrupted run carried
  // across this boundary, since nothing mutates between rounds.
  std::size_t last_done_count = 0;
  std::vector<std::optional<std::uint64_t>> last_markers;
  if (config_.stall_window != 0) {
    last_markers.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      last_markers.push_back(programs[v]->progress_marker());
    }
    if (start_round != 0) {
      last_done_count = static_cast<std::size_t>(
          std::count_if(programs.begin(), programs.end(),
                        [](const auto& p) { return p->done(); }));
    }
  }

  // Hoisted out of the round loop: constructing a std::function per round
  // was one heap allocation per round — the thread-count-dependent
  // allocation drift bench_simulator now asserts against.  The lambda
  // reads `round` through this reference.
  std::uint64_t round = start_round;
  const std::function<void(std::size_t, std::size_t)> execute_nodes =
      [&](std::size_t lo, std::size_t hi) {
        // The static partition assigns lane l the range starting at
        // floor(n*l/lanes); ceil(lo*lanes/n) inverts that, giving the
        // recorder one trace track per worker lane.
        const auto lane =
            static_cast<std::uint32_t>(pool ? (lo * lanes + n - 1) / n : 0);
        obs::ScopedSpan obs_span(config_.recorder, obs::Phase::kNodeExecute,
                                 round, lane);
        for (std::size_t v = lo; v < hi; ++v) {
          if (injector && node_up[v] == 0) {
            contexts[v].begin_round_empty(round);
            continue;
          }
          contexts[v].begin_round(round, mailboxes[v]);
          programs[v]->on_round(contexts[v]);
        }
      };

  for (;; ++round) {
    metrics_.rounds = round;  // kept current so a throw reports progress
    if (round >= config_.max_rounds) {
      throw RoundLimitError("simulation exceeded max_rounds = " +
                            std::to_string(config_.max_rounds));
    }

    // Check termination: all done and nothing queued for delivery
    // (including messages still parked in the delay buffers).
    if (in_flight == 0) {
      const bool all_done =
          std::all_of(programs.begin(), programs.end(),
                      [](const auto& p) { return p->done(); });
      if (all_done) {
        metrics_.rounds = round;
        return metrics_;
      }
    }

    // Top-of-round boundary: everything the rest of this round depends on
    // is in programs/mailboxes/delayed_pending — snapshot (and/or
    // suspend) here.
    if (checkpoint_or_halt(round, start_round, stall_rounds, mailboxes,
                           delayed_pending, programs)) {
      return metrics_;  // suspended; save_snapshot() has the state
    }

    // Phase 1 (sequential): crash bookkeeping and the watchdog's
    // consumption signal — everything that mutates shared metrics or the
    // trace, in node-id order.  A crashed node freezes: its program does
    // not run (state persists for a crash-restart), it sends nothing, and
    // every message in its mailbox is lost.
    bool consumed_this_round = false;
    {
      obs::ScopedSpan obs_span(config_.recorder, obs::Phase::kCrashBookkeeping,
                               round);
      if (injector) {
        for (NodeId v = 0; v < n; ++v) {
          const bool up = injector->node_up(v, round);
          node_up[v] = up ? 1 : 0;
          if (up) {
            continue;
          }
          metrics_.crashed_node_rounds += 1;
          metrics_.dropped_messages += mailboxes[v].size();
          in_flight -= mailboxes[v].size();
          if (config_.trace != nullptr) {
            for (const auto& lost : mailboxes[v]) {
              config_.trace->on_fault(
                  FaultEvent{round, lost.from(), v, FaultKind::kReceiverCrash});
            }
          }
          mailboxes[v].clear();
        }
      }
      if (config_.stall_window != 0) {
        for (NodeId v = 0; v < n; ++v) {
          if ((!injector || node_up[v] != 0) && !mailboxes[v].empty() &&
              !last_markers[v].has_value()) {
            consumed_this_round = true;
            break;
          }
        }
      }
    }

    // Phase 2 (parallel): run every live node on this round's inbox.
    // Each lane owns a contiguous node range and touches only those
    // nodes' contexts and programs; the first exception in partition
    // order is rethrown — the same one a sequential loop would raise.
    if (pool) {
      pool->parallel_ranges(n, execute_nodes);
    } else {
      execute_nodes(0, n);
    }
    // Every mailbox was consumed (or lost to a crash); only the delay
    // buffers still hold traffic, re-counted below.
    in_flight = 0;

    // Phase 3 (sequential): delayed messages from the previous round
    // become deliverable now, ahead of this round's sends (they are
    // older traffic).
    {
      obs::ScopedSpan obs_span(config_.recorder, obs::Phase::kDelayedRelease,
                               round);
      for (NodeId v = 0; v < n; ++v) {
        if (!delayed_pending[v].empty()) {
          mailboxes[v].swap(delayed_pending[v]);
          delayed_pending[v].clear();
          in_flight += mailboxes[v].size();
        }
      }
    }

    // Phase 4 (sequential merge): bundle slots become physical messages;
    // faults, metrics, cut accounting, and the trace all happen here in
    // node-id order, so the observable stream is independent of `lanes`.
    // The span runs to the end of the iteration, covering the merge and
    // the end-of-round watchdog bookkeeping.
    obs::ScopedSpan obs_merge_span(config_.recorder, obs::Phase::kMerge,
                                   round);
    PayloadArena& arena = arenas[round & 1];
    arena.reset();
    RoundStats stats;
    for (NodeId v = 0; v < n; ++v) {
      auto& slots = contexts[v].slots();
      const auto nbrs = graph_->neighbors(v);
      const std::size_t base = graph_->adjacency_offset(v);
      for (std::size_t i = 0; i < slots.size(); ++i) {
        SlotContext::Slot& slot = slots[i];
        if (slot.logical == 0) {
          continue;
        }
        const NodeId to = nbrs[i];
        const std::uint64_t bits = slot.writer.bit_size();
        const std::uint64_t logical = slot.logical;
        if (config_.bits_per_edge_per_round != 0 &&
            bits > config_.bits_per_edge_per_round) {
          throw CongestViolationError(
              "CONGEST violation: " + std::to_string(bits) + " bits on edge " +
              std::to_string(v) + "->" + std::to_string(to) + " in round " +
              std::to_string(round) + " (budget " +
              std::to_string(config_.bits_per_edge_per_round) + ")");
        }
        // Transmission is accounted (and traced) whether or not the message
        // survives: the sender spent the bits on the wire either way.
        stats.physical_messages += 1;
        stats.logical_messages += logical;
        stats.bits += bits;
        stats.max_bits_on_edge = std::max(stats.max_bits_on_edge, bits);
        stats.max_logical_on_edge = std::max(stats.max_logical_on_edge, logical);
        if (has_cut_ && cut_flags_[base + i] != 0) {
          metrics_.cut_bits += bits;
        }
        if (config_.trace != nullptr) {
          config_.trace->on_physical_message(
              TraceEvent{round, v, to, bits, logical});
        }

        bool duplicate = false;
        if (injector) {
          if (!injector->link_up(v, to, round)) {
            metrics_.dropped_messages += 1;
            if (config_.trace != nullptr) {
              config_.trace->on_fault(
                  FaultEvent{round, v, to, FaultKind::kLinkDown});
            }
            continue;
          }
          switch (injector->classify(round, v, to)) {
            case FaultInjector::Delivery::kDrop:
              metrics_.dropped_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDrop});
              }
              continue;
            case FaultInjector::Delivery::kDuplicate:
              metrics_.duplicated_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDuplicate});
              }
              duplicate = true;
              break;  // falls through to the normal delivery below
            case FaultInjector::Delivery::kDelay:
              metrics_.delayed_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDelay});
              }
              // Cold path: the payload outlives the arena window, so it
              // gets an owning copy.
              delayed_pending[to].emplace_back(
                  v,
                  std::vector<std::uint8_t>(
                      slot.writer.data(),
                      slot.writer.data() + (bits + 7) / 8),
                  bits);
              in_flight += 1;
              continue;
            case FaultInjector::Delivery::kDeliver:
              break;
          }
        }
        // Hot path: one bump-copy into the round arena; the mailbox holds
        // a view (a duplicate fault shares the same bytes).
        const std::size_t nbytes = (bits + 7) / 8;
        std::uint8_t* mem = arena.allocate(nbytes);
        if (nbytes != 0) {
          std::memcpy(mem, slot.writer.data(), nbytes);
        }
        const std::uint8_t* payload = mem;
        if (duplicate) {
          mailboxes[to].emplace_back(v, payload, bits);
          in_flight += 1;
        }
        mailboxes[to].emplace_back(v, payload, bits);
        in_flight += 1;
      }
    }
    arena_block_allocations_ =
        arenas[0].block_allocations() + arenas[1].block_allocations();

    metrics_.total_physical_messages += stats.physical_messages;
    metrics_.total_logical_messages += stats.logical_messages;
    metrics_.total_bits += stats.bits;
    metrics_.max_bits_on_edge_round =
        std::max(metrics_.max_bits_on_edge_round, stats.max_bits_on_edge);
    metrics_.max_logical_on_edge_round =
        std::max(metrics_.max_logical_on_edge_round, stats.max_logical_on_edge);
    if (config_.record_per_round) {
      metrics_.per_round.push_back(stats);
    }

    if (config_.stall_window != 0) {
      const auto done_count = static_cast<std::size_t>(
          std::count_if(programs.begin(), programs.end(),
                        [](const auto& p) { return p->done(); }));
      bool marker_advanced = false;
      for (NodeId v = 0; v < n; ++v) {
        const auto marker = programs[v]->progress_marker();
        if (marker != last_markers[v]) {
          marker_advanced = true;
          last_markers[v] = marker;
        }
      }
      const bool progress = consumed_this_round || marker_advanced ||
                            done_count != last_done_count;
      last_done_count = done_count;
      if (progress) {
        stall_rounds = 0;
      } else if (++stall_rounds >= config_.stall_window) {
        throw StallError(
            "network stalled: no message in flight and no program finished "
            "for " +
            std::to_string(stall_rounds) + " consecutive rounds (round " +
            std::to_string(round) + ", " + std::to_string(done_count) + "/" +
            std::to_string(n) +
            " nodes done) — suspect message loss, a crash-partition, or a "
            "protocol deadlock");
      }
    }
  }
}

RunMetrics Network::run_frontier(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const NodeId n = graph_->num_nodes();
  CBC_EXPECTS(programs.size() == n, "one program per node required");
  for (NodeId v = 0; v < n; ++v) {
    CBC_EXPECTS(programs[v] != nullptr, "null program");
  }

  std::optional<FaultInjector> injector;
  if (config_.faults != nullptr && !config_.faults->empty()) {
    injector.emplace(*config_.faults, *graph_);
  }

  metrics_ = RunMetrics{};
  arena_block_allocations_ = 0;
  std::vector<std::vector<InboundMessage>> mailboxes(n);
  std::vector<std::vector<InboundMessage>> delayed_pending(n);
  for (NodeId v = 0; v < n; ++v) {
    mailboxes[v].reserve(graph_->degree(v) + 1);
  }
  std::uint64_t in_flight = 0;

  std::uint64_t stall_rounds = 0;
  const std::uint64_t start_round =
      apply_pending_resume(mailboxes, delayed_pending, programs, stall_rounds);
  for (NodeId v = 0; v < n; ++v) {
    in_flight += mailboxes[v].size() + delayed_pending[v].size();
  }

  unsigned lanes =
      config_.threads == 0 ? ThreadPool::hardware_threads() : config_.threads;
  if (config_.frontier_clamp_lanes) {
    lanes = std::min(lanes, ThreadPool::hardware_threads());
  }
  std::optional<ThreadPool> pool;
  if (lanes > 1 && n > 1) {
    pool.emplace(lanes);
  }
  const unsigned lane_count = pool ? lanes : 1;
  std::vector<LaneContext> lane_ctxs;
  lane_ctxs.reserve(lane_count);
  for (unsigned lane = 0; lane < lane_count; ++lane) {
    lane_ctxs.emplace_back(*graph_);
  }
  // Per-lane double-buffered payload storage, same two-round lifetime as
  // the arena engine's global pair: lane arenas for round r are reset at
  // the top of round r + 2, strictly after the last reader.  Lane-private
  // arenas keep the parallel flush free of shared mutable cache lines.
  std::vector<std::array<PayloadArena, 2>> lane_arenas(lane_count);

  std::vector<std::uint8_t> node_up;
  if (injector) {
    node_up.assign(n, 1);
  }

  // --- SoA per-node scheduling state -----------------------------------
  // wake_[v] is the round the node asked to act in without a message
  // (kActiveOnMessage = not armed); the heap holds (round, node) pairs
  // and is lazily cleaned: an entry is live iff wake_[v] still equals its
  // round.  active_stamp_[v] == r + 1 marks "already in round r's active
  // set", deduplicating message marks against timer wakes.
  std::vector<std::uint64_t> wake(n, kActiveOnMessage);
  std::vector<std::uint64_t> active_stamp(n, 0);
  std::vector<std::uint8_t> done_flags(n, 0);
  std::size_t done_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (programs[v]->done()) {
      done_flags[v] = 1;
      ++done_count;
    }
  }
  using WakeEntry = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<WakeEntry, std::vector<WakeEntry>, std::greater<>>
      wake_heap;
  std::vector<NodeId> active;
  std::vector<NodeId> msg_wake;
  std::vector<NodeId> delayed_nodes;

  const auto arm_wake = [&](NodeId v, std::uint64_t from) {
    const std::uint64_t w = programs[v]->next_active_round(from);
    if (w == kActiveOnMessage) {
      wake[v] = kActiveOnMessage;
      return;
    }
    const std::uint64_t wr = w > from ? w : from;
    wake[v] = wr;
    wake_heap.emplace(wr, v);
  };
  const auto mark = [&](NodeId v, std::uint64_t target) {
    if (active_stamp[v] < target + 1) {
      active_stamp[v] = target + 1;
      msg_wake.push_back(v);
    }
  };

  for (NodeId v = 0; v < n; ++v) {
    arm_wake(v, start_round);
    if (!mailboxes[v].empty()) {
      mark(v, start_round);
    }
    if (!delayed_pending[v].empty()) {
      delayed_nodes.push_back(v);
    }
  }

  // Watchdog state, mirrored from the arena engine; done counting is
  // incremental here (done_flags above) because only ran nodes can flip.
  std::size_t last_done_count = 0;
  std::vector<std::optional<std::uint64_t>> last_markers;
  if (config_.stall_window != 0) {
    last_markers.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      last_markers.push_back(programs[v]->progress_marker());
    }
    if (start_round != 0) {
      last_done_count = done_count;
    }
  }

  // Hoisted (one-time) dispatch callables — see the arena engine's note
  // on per-round std::function allocations.
  std::uint64_t round = start_round;
  const auto run_range = [&](unsigned lane, std::size_t lo, std::size_t hi) {
    obs::ScopedSpan obs_span(config_.recorder, obs::Phase::kLaneDispatch,
                             round, lane);
    LaneContext& ctx = lane_ctxs[lane];
    PayloadArena& arena = lane_arenas[lane][round & 1];
    for (std::size_t i = lo; i < hi; ++i) {
      const NodeId v = active[i];
      if (injector && node_up[v] == 0) {
        continue;  // frozen: mailbox already cleared, no slots touched
      }
      ctx.begin(v, round, mailboxes[v]);
      programs[v]->on_round(ctx);
      ctx.flush(arena);
    }
  };
  const std::function<void(unsigned, std::size_t, std::size_t)> lane_fn =
      run_range;

  for (;;) {
    metrics_.rounds = round;  // kept current so a throw reports progress
    if (round >= config_.max_rounds) {
      throw RoundLimitError("simulation exceeded max_rounds = " +
                            std::to_string(config_.max_rounds));
    }

    if (in_flight == 0 && done_count == n) {
      metrics_.rounds = round;
      return metrics_;
    }

    if (checkpoint_or_halt(round, start_round, stall_rounds, mailboxes,
                           delayed_pending, programs)) {
      return metrics_;  // suspended; save_snapshot() has the state
    }

    // Quiescence fast-forward: with no message in flight, no node due,
    // and no fault plan (crash schedules make every round observable),
    // the intervening rounds are provably empty — record them as such
    // without running the phase machinery.  The skip stops at the next
    // timer wake and at every boundary the full loop would act on: the
    // round limit, the round where the stall watchdog fires (executed
    // normally so the error text matches the arena engine exactly), the
    // next checkpoint boundary, halt_at_round, and a polling cap when an
    // external halt flag is registered.
    if (!injector && in_flight == 0 && msg_wake.empty()) {
      while (!wake_heap.empty() &&
             wake[wake_heap.top().second] != wake_heap.top().first) {
        wake_heap.pop();  // stale entry, superseded by a later re-arm
      }
      if (wake_heap.empty() || wake_heap.top().first > round) {
        std::uint64_t target = wake_heap.empty()
                                   ? std::numeric_limits<std::uint64_t>::max()
                                   : wake_heap.top().first;
        target = std::min(target, config_.max_rounds);
        if (config_.stall_window != 0) {
          target = std::min(
              target, round + (config_.stall_window - stall_rounds) - 1);
        }
        if (config_.checkpoint.enabled()) {
          const std::uint64_t every = config_.checkpoint.every_rounds;
          target = std::min(target, (round / every + 1) * every);
        }
        if (config_.halt_at_round != 0 && config_.halt_at_round > round) {
          target = std::min(target, config_.halt_at_round);
        }
        if (config_.halt_request != nullptr) {
          target = std::min(target, round + 1024);
        }
        if (target > round) {
          obs::ScopedSpan obs_span(config_.recorder,
                                   obs::Phase::kQuiescenceSkip, round);
          for (std::uint64_t rr = round; rr < target; ++rr) {
            metrics_.rounds = rr;
            if (config_.record_per_round) {
              metrics_.per_round.push_back(RoundStats{});
            }
            if (config_.stall_window != 0) {
              ++stall_rounds;
            }
          }
          round = target;
          continue;  // re-enter the loop top at the first non-empty round
        }
      }
    }

    // Phase 1 (sequential): crash bookkeeping, identical to the arena
    // engine.  Only active nodes can hold mail (every delivery marks its
    // receiver), so clearing crashed mailboxes over all nodes matches the
    // arena scan message-for-message.
    if (injector) {
      obs::ScopedSpan obs_span(config_.recorder, obs::Phase::kCrashBookkeeping,
                               round);
      for (NodeId v = 0; v < n; ++v) {
        const bool up = injector->node_up(v, round);
        node_up[v] = up ? 1 : 0;
        if (up) {
          continue;
        }
        metrics_.crashed_node_rounds += 1;
        metrics_.dropped_messages += mailboxes[v].size();
        in_flight -= mailboxes[v].size();
        if (config_.trace != nullptr) {
          for (const auto& lost : mailboxes[v]) {
            config_.trace->on_fault(
                FaultEvent{round, lost.from(), v, FaultKind::kReceiverCrash});
          }
        }
        mailboxes[v].clear();
      }
    }

    // Phase 2a (sequential): build this round's active set — the nodes
    // marked by last round's deliveries plus the nodes whose timer wake
    // is due — sorted ascending so contiguous chunks of it preserve the
    // arena engine's node-id merge order.
    bool consumed_this_round = false;
    {
      obs::ScopedSpan obs_span(config_.recorder, obs::Phase::kActiveSetBuild,
                               round);
      active.clear();
      for (const NodeId v : msg_wake) {
        if (active_stamp[v] == round + 1) {
          active.push_back(v);
        }
      }
      msg_wake.clear();
      while (!wake_heap.empty() && wake_heap.top().first <= round) {
        const auto [wr, v] = wake_heap.top();
        wake_heap.pop();
        if (wake[v] != wr) {
          continue;  // stale entry
        }
        if (active_stamp[v] != round + 1) {
          active_stamp[v] = round + 1;
          active.push_back(v);
        }
      }
      std::sort(active.begin(), active.end());
      if (config_.stall_window != 0) {
        for (const NodeId v : active) {
          if ((!injector || node_up[v] != 0) && !mailboxes[v].empty() &&
              !last_markers[v].has_value()) {
            consumed_this_round = true;
            break;
          }
        }
      }
    }

    // Phase 2b (parallel): run the active nodes.  Each lane executes a
    // contiguous chunk of the sorted active set and flushes bundles into
    // its private arena; small active sets stay on the calling thread so
    // dispatch overhead never dominates a sparse frontier.
    for (unsigned lane = 0; lane < lane_count; ++lane) {
      lane_arenas[lane][round & 1].reset();
    }
    if (pool && active.size() >= config_.frontier_min_parallel_nodes) {
      pool->parallel_ranges(active.size(), lane_fn);
    } else if (!active.empty()) {
      run_range(0, 0, active.size());
    }
    in_flight = 0;

    // Phase 3 (sequential): release last round's delayed messages; their
    // receivers become active next round like any other delivery.
    {
      obs::ScopedSpan obs_span(config_.recorder, obs::Phase::kDelayedRelease,
                               round);
      for (const NodeId v : delayed_nodes) {
        if (delayed_pending[v].empty()) {
          continue;  // duplicate entry, already released
        }
        mailboxes[v].swap(delayed_pending[v]);
        delayed_pending[v].clear();
        in_flight += mailboxes[v].size();
        mark(v, round + 1);
      }
      delayed_nodes.clear();
    }

    // Phase 4 (sequential merge): replay lane outboxes in lane order.
    // Chunks are contiguous ranges of the ascending active set, so this
    // visits bundles in exactly the arena engine's (node id, adjacency
    // index) order for every lane count — the determinism argument of
    // DESIGN.md §13.  The span runs to the end of the iteration, covering
    // the merge and the watchdog bookkeeping.
    obs::ScopedSpan obs_merge_span(config_.recorder, obs::Phase::kMerge,
                                   round);
    RoundStats stats;
    for (unsigned lane = 0; lane < lane_count; ++lane) {
      for (const LaneContext::OutRec& rec : lane_ctxs[lane].outbox()) {
        const NodeId v = rec.from;
        const NodeId to = graph_->neighbors(v)[rec.adj_index];
        const std::uint64_t bits = rec.bits;
        if (config_.bits_per_edge_per_round != 0 &&
            bits > config_.bits_per_edge_per_round) {
          throw CongestViolationError(
              "CONGEST violation: " + std::to_string(bits) + " bits on edge " +
              std::to_string(v) + "->" + std::to_string(to) + " in round " +
              std::to_string(round) + " (budget " +
              std::to_string(config_.bits_per_edge_per_round) + ")");
        }
        stats.physical_messages += 1;
        stats.logical_messages += rec.logical;
        stats.bits += bits;
        stats.max_bits_on_edge = std::max(stats.max_bits_on_edge, bits);
        stats.max_logical_on_edge =
            std::max(stats.max_logical_on_edge, rec.logical);
        if (has_cut_ &&
            cut_flags_[graph_->adjacency_offset(v) + rec.adj_index] != 0) {
          metrics_.cut_bits += bits;
        }
        if (config_.trace != nullptr) {
          config_.trace->on_physical_message(
              TraceEvent{round, v, to, bits, rec.logical});
        }

        bool duplicate = false;
        if (injector) {
          if (!injector->link_up(v, to, round)) {
            metrics_.dropped_messages += 1;
            if (config_.trace != nullptr) {
              config_.trace->on_fault(
                  FaultEvent{round, v, to, FaultKind::kLinkDown});
            }
            continue;
          }
          switch (injector->classify(round, v, to)) {
            case FaultInjector::Delivery::kDrop:
              metrics_.dropped_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDrop});
              }
              continue;
            case FaultInjector::Delivery::kDuplicate:
              metrics_.duplicated_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDuplicate});
              }
              duplicate = true;
              break;  // falls through to the normal delivery below
            case FaultInjector::Delivery::kDelay:
              metrics_.delayed_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDelay});
              }
              // Cold path: the payload outlives the lane arena window, so
              // it gets an owning copy.
              delayed_pending[to].emplace_back(
                  v,
                  std::vector<std::uint8_t>(rec.data,
                                            rec.data + (bits + 7) / 8),
                  bits);
              delayed_nodes.push_back(to);
              in_flight += 1;
              continue;
            case FaultInjector::Delivery::kDeliver:
              break;
          }
        }
        // Hot path: the payload already lives in the lane arena (copied
        // once, in parallel, at flush) — the mailbox takes a view.
        if (duplicate) {
          mailboxes[to].emplace_back(v, rec.data, bits);
          in_flight += 1;
        }
        mailboxes[to].emplace_back(v, rec.data, bits);
        in_flight += 1;
        mark(to, round + 1);
      }
      lane_ctxs[lane].outbox().clear();
    }
    arena_block_allocations_ = 0;
    for (unsigned lane = 0; lane < lane_count; ++lane) {
      arena_block_allocations_ += lane_arenas[lane][0].block_allocations() +
                                  lane_arenas[lane][1].block_allocations();
    }

    metrics_.total_physical_messages += stats.physical_messages;
    metrics_.total_logical_messages += stats.logical_messages;
    metrics_.total_bits += stats.bits;
    metrics_.max_bits_on_edge_round =
        std::max(metrics_.max_bits_on_edge_round, stats.max_bits_on_edge);
    metrics_.max_logical_on_edge_round =
        std::max(metrics_.max_logical_on_edge_round, stats.max_logical_on_edge);
    if (config_.record_per_round) {
      metrics_.per_round.push_back(stats);
    }

    // Sequential post-pass over the nodes that ran: re-arm their timer
    // wakes and fold their done()/marker deltas into the watchdog state.
    // A crashed active node is retried next round — a conservative
    // over-approximation (the contract makes unneeded runs no-ops).
    bool marker_advanced = false;
    for (const NodeId v : active) {
      if (injector && node_up[v] == 0) {
        wake[v] = round + 1;
        wake_heap.emplace(round + 1, v);
        continue;
      }
      arm_wake(v, round + 1);
      const std::uint8_t d = programs[v]->done() ? 1 : 0;
      if (d != done_flags[v]) {
        done_flags[v] = d;
        if (d != 0) {
          ++done_count;
        } else {
          --done_count;
        }
      }
      if (config_.stall_window != 0) {
        const auto marker = programs[v]->progress_marker();
        if (marker != last_markers[v]) {
          marker_advanced = true;
          last_markers[v] = marker;
        }
      }
    }

    if (config_.stall_window != 0) {
      const bool progress = consumed_this_round || marker_advanced ||
                            done_count != last_done_count;
      last_done_count = done_count;
      if (progress) {
        stall_rounds = 0;
      } else if (++stall_rounds >= config_.stall_window) {
        throw StallError(
            "network stalled: no message in flight and no program finished "
            "for " +
            std::to_string(stall_rounds) + " consecutive rounds (round " +
            std::to_string(round) + ", " + std::to_string(done_count) + "/" +
            std::to_string(n) +
            " nodes done) — suspect message loss, a crash-partition, or a "
            "protocol deadlock");
      }
    }
    ++round;
  }
}

RunMetrics Network::run_legacy(
    std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const NodeId n = graph_->num_nodes();
  CBC_EXPECTS(programs.size() == n, "one program per node required");
  std::vector<LegacyContext> contexts;
  contexts.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    CBC_EXPECTS(programs[v] != nullptr, "null program");
    contexts.emplace_back(*graph_, v);
  }

  std::optional<FaultInjector> injector;
  if (config_.faults != nullptr && !config_.faults->empty()) {
    injector.emplace(*config_.faults, *graph_);
  }

  metrics_ = RunMetrics{};
  arena_block_allocations_ = 0;
  std::vector<std::vector<InboundMessage>> mailboxes(n);
  std::vector<std::vector<InboundMessage>> delayed_pending(n);
  bool messages_in_flight = false;

  std::uint64_t stall_rounds = 0;
  const std::uint64_t start_round =
      apply_pending_resume(mailboxes, delayed_pending, programs, stall_rounds);
  for (NodeId v = 0; v < n; ++v) {
    if (!mailboxes[v].empty() || !delayed_pending[v].empty()) {
      messages_in_flight = true;
      break;
    }
  }

  std::size_t last_done_count = 0;
  std::vector<std::optional<std::uint64_t>> last_markers;
  if (config_.stall_window != 0) {
    last_markers.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      last_markers.push_back(programs[v]->progress_marker());
    }
    if (start_round != 0) {
      last_done_count = static_cast<std::size_t>(
          std::count_if(programs.begin(), programs.end(),
                        [](const auto& p) { return p->done(); }));
    }
  }

  for (std::uint64_t round = start_round;; ++round) {
    metrics_.rounds = round;  // kept current so a throw reports progress
    if (round >= config_.max_rounds) {
      throw RoundLimitError("simulation exceeded max_rounds = " +
                            std::to_string(config_.max_rounds));
    }

    if (!messages_in_flight) {
      const bool all_done =
          std::all_of(programs.begin(), programs.end(),
                      [](const auto& p) { return p->done(); });
      if (all_done) {
        metrics_.rounds = round;
        return metrics_;
      }
    }

    if (checkpoint_or_halt(round, start_round, stall_rounds, mailboxes,
                           delayed_pending, programs)) {
      return metrics_;  // suspended; save_snapshot() has the state
    }

    // The legacy engine is sequential, so one whole-round span is its
    // flight-recorder granularity.
    obs::ScopedSpan obs_round_span(config_.recorder, obs::Phase::kRound,
                                   round);

    bool consumed_this_round = false;
    for (NodeId v = 0; v < n; ++v) {
      const bool up = !injector || injector->node_up(v, round);
      if (up) {
        if (config_.stall_window != 0 && !mailboxes[v].empty() &&
            !last_markers[v].has_value()) {
          consumed_this_round = true;
        }
        contexts[v].begin_round(round, std::move(mailboxes[v]));
        mailboxes[v].clear();
        programs[v]->on_round(contexts[v]);
        continue;
      }
      metrics_.crashed_node_rounds += 1;
      metrics_.dropped_messages += mailboxes[v].size();
      if (config_.trace != nullptr) {
        for (const auto& lost : mailboxes[v]) {
          config_.trace->on_fault(
              FaultEvent{round, lost.from(), v, FaultKind::kReceiverCrash});
        }
      }
      mailboxes[v].clear();
      contexts[v].begin_round(round, {});  // clears any stale outbox
    }

    for (NodeId v = 0; v < n; ++v) {
      if (!delayed_pending[v].empty()) {
        mailboxes[v] = std::move(delayed_pending[v]);
        delayed_pending[v].clear();
      }
    }

    RoundStats stats;
    for (NodeId v = 0; v < n; ++v) {
      auto& outbox = contexts[v].outbox();
      if (outbox.empty()) {
        continue;
      }
      // Group logical sends by destination, preserving send order.
      std::stable_sort(outbox.begin(), outbox.end(),
                       [](const PendingSend& x, const PendingSend& y) {
                         return x.to < y.to;
                       });
      std::size_t i = 0;
      while (i < outbox.size()) {
        const NodeId to = outbox[i].to;
        BitWriter bundle;
        std::uint64_t logical = 0;
        while (i < outbox.size() && outbox[i].to == to) {
          append_bits(bundle, outbox[i].bytes, outbox[i].bits);
          ++logical;
          ++i;
        }
        const std::uint64_t bits = bundle.bit_size();
        if (config_.bits_per_edge_per_round != 0 &&
            bits > config_.bits_per_edge_per_round) {
          throw CongestViolationError(
              "CONGEST violation: " + std::to_string(bits) + " bits on edge " +
              std::to_string(v) + "->" + std::to_string(to) + " in round " +
              std::to_string(round) + " (budget " +
              std::to_string(config_.bits_per_edge_per_round) + ")");
        }
        stats.physical_messages += 1;
        stats.logical_messages += logical;
        stats.bits += bits;
        stats.max_bits_on_edge = std::max(stats.max_bits_on_edge, bits);
        stats.max_logical_on_edge = std::max(stats.max_logical_on_edge, logical);
        if (has_cut_ &&
            cut_flags_[graph_->adjacency_offset(v) +
                       graph_->neighbor_index(v, to)] != 0) {
          metrics_.cut_bits += bits;
        }
        if (config_.trace != nullptr) {
          config_.trace->on_physical_message(
              TraceEvent{round, v, to, bits, logical});
        }

        if (injector) {
          if (!injector->link_up(v, to, round)) {
            metrics_.dropped_messages += 1;
            if (config_.trace != nullptr) {
              config_.trace->on_fault(
                  FaultEvent{round, v, to, FaultKind::kLinkDown});
            }
            continue;
          }
          switch (injector->classify(round, v, to)) {
            case FaultInjector::Delivery::kDrop:
              metrics_.dropped_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDrop});
              }
              continue;
            case FaultInjector::Delivery::kDuplicate:
              metrics_.duplicated_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDuplicate});
              }
              mailboxes[to].emplace_back(v, bundle.bytes(), bundle.bit_size());
              break;  // falls through to the normal delivery below
            case FaultInjector::Delivery::kDelay:
              metrics_.delayed_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDelay});
              }
              delayed_pending[to].emplace_back(v, bundle.bytes(),
                                               bundle.bit_size());
              continue;
            case FaultInjector::Delivery::kDeliver:
              break;
          }
        }
        mailboxes[to].emplace_back(v, bundle.bytes(), bundle.bit_size());
      }
    }

    metrics_.total_physical_messages += stats.physical_messages;
    metrics_.total_logical_messages += stats.logical_messages;
    metrics_.total_bits += stats.bits;
    metrics_.max_bits_on_edge_round =
        std::max(metrics_.max_bits_on_edge_round, stats.max_bits_on_edge);
    metrics_.max_logical_on_edge_round =
        std::max(metrics_.max_logical_on_edge_round, stats.max_logical_on_edge);
    if (config_.record_per_round) {
      metrics_.per_round.push_back(stats);
    }

    messages_in_flight = false;
    for (NodeId v = 0; v < n; ++v) {
      if (!mailboxes[v].empty() || !delayed_pending[v].empty()) {
        messages_in_flight = true;
        break;
      }
    }

    if (config_.stall_window != 0) {
      const auto done_count = static_cast<std::size_t>(
          std::count_if(programs.begin(), programs.end(),
                        [](const auto& p) { return p->done(); }));
      bool marker_advanced = false;
      for (NodeId v = 0; v < n; ++v) {
        const auto marker = programs[v]->progress_marker();
        if (marker != last_markers[v]) {
          marker_advanced = true;
          last_markers[v] = marker;
        }
      }
      const bool progress = consumed_this_round || marker_advanced ||
                            done_count != last_done_count;
      last_done_count = done_count;
      if (progress) {
        stall_rounds = 0;
      } else if (++stall_rounds >= config_.stall_window) {
        throw StallError(
            "network stalled: no message in flight and no program finished "
            "for " +
            std::to_string(stall_rounds) + " consecutive rounds (round " +
            std::to_string(round) + ", " + std::to_string(done_count) + "/" +
            std::to_string(n) +
            " nodes done) — suspect message loss, a crash-partition, or a "
            "protocol deadlock");
      }
    }
  }
}

}  // namespace congestbc
