#include "congest/network.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "common/assert.hpp"
#include "common/bit_io.hpp"
#include "congest/trace.hpp"

namespace congestbc {

namespace {

std::uint64_t directed_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

/// One queued logical payload.
struct PendingSend {
  NodeId to;
  std::vector<std::uint8_t> bytes;
  std::size_t bits;
};

/// Concrete per-node context; reused across rounds.
class ContextImpl final : public NodeContext {
 public:
  ContextImpl(const Graph& graph, NodeId id)
      : graph_(&graph), id_(id) {}

  NodeId id() const override { return id_; }
  std::uint32_t num_nodes() const override { return graph_->num_nodes(); }
  std::span<const NodeId> neighbors() const override {
    return graph_->neighbors(id_);
  }
  std::uint64_t round() const override { return round_; }
  const std::vector<InboundMessage>& inbox() const override { return inbox_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    CBC_EXPECTS(graph_->has_edge(id_, neighbor),
                "node tried to send to a non-neighbor");
    outbox_.push_back(PendingSend{neighbor, payload.bytes(), payload.bit_size()});
  }

  // -- harness side --
  void begin_round(std::uint64_t round, std::vector<InboundMessage> inbox) {
    round_ = round;
    inbox_ = std::move(inbox);
    outbox_.clear();
  }
  std::vector<PendingSend>& outbox() { return outbox_; }

 private:
  const Graph* graph_;
  NodeId id_;
  std::uint64_t round_ = 0;
  std::vector<InboundMessage> inbox_;
  std::vector<PendingSend> outbox_;
};

}  // namespace

std::uint64_t congest_budget_bits(std::uint32_t num_nodes) {
  const std::uint64_t log_n = ceil_log2(num_nodes < 2 ? 2 : num_nodes);
  // The floor of 8 "logical bits" keeps tiny graphs workable: the
  // soft-float payload has a constant-bits floor (mantissa >= 8), so the
  // O(log N) budget needs the same floor on its constant.
  return 16 * std::max<std::uint64_t>(log_n, 8);
}

Network::Network(const Graph& graph, NetworkConfig config)
    : graph_(&graph), config_(config) {
  CBC_EXPECTS(graph.num_nodes() >= 1, "network needs at least one node");
}

void Network::register_cut(const std::vector<Edge>& cut_edges) {
  for (const auto& e : cut_edges) {
    CBC_EXPECTS(graph_->has_edge(e.u, e.v), "cut edge not present in graph");
    cut_keys_.insert(directed_key(e.u, e.v));
    cut_keys_.insert(directed_key(e.v, e.u));
  }
}

RunMetrics Network::run(const ProgramFactory& factory) {
  const NodeId n = graph_->num_nodes();
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    programs.push_back(factory(v));
    CBC_CHECK(programs.back() != nullptr, "factory returned null program");
  }
  return run(programs);
}

RunMetrics Network::run(std::vector<std::unique_ptr<NodeProgram>>& programs) {
  const NodeId n = graph_->num_nodes();
  CBC_EXPECTS(programs.size() == n, "one program per node required");
  std::vector<ContextImpl> contexts;
  contexts.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    CBC_EXPECTS(programs[v] != nullptr, "null program");
    contexts.emplace_back(*graph_, v);
  }

  std::optional<FaultInjector> injector;
  if (config_.faults != nullptr && !config_.faults->empty()) {
    injector.emplace(*config_.faults, *graph_);
  }

  metrics_ = RunMetrics{};
  std::vector<std::vector<InboundMessage>> mailboxes(n);
  // Messages hit by a kDelay fault in round r sit here through round r+1's
  // delivery phase and land in the inbox read at round r+2 (one round late).
  std::vector<std::vector<InboundMessage>> delayed_pending(n);
  bool messages_in_flight = false;

  // Stall watchdog state.  Progress means: the done() count changed, a
  // program's progress_marker() advanced, or a live node *without* a
  // marker consumed a message.  Mere transmission is never progress —
  // under a drop-everything plan senders stay busy forever while the
  // computation goes nowhere — and consumption by marker-bearing programs
  // (the reliable transport) is ignored too, because their control
  // chatter keeps flowing even when retransmitting into a dead peer.
  std::uint64_t stall_rounds = 0;
  std::size_t last_done_count = 0;
  std::vector<std::optional<std::uint64_t>> last_markers;
  if (config_.stall_window != 0) {
    last_markers.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      last_markers.push_back(programs[v]->progress_marker());
    }
  }

  for (std::uint64_t round = 0;; ++round) {
    metrics_.rounds = round;  // kept current so a throw reports progress
    if (round >= config_.max_rounds) {
      throw RoundLimitError("simulation exceeded max_rounds = " +
                            std::to_string(config_.max_rounds));
    }

    // Check termination: all done and nothing queued for delivery
    // (including messages still parked in the delay buffers).
    if (!messages_in_flight) {
      const bool all_done =
          std::all_of(programs.begin(), programs.end(),
                      [](const auto& p) { return p->done(); });
      if (all_done) {
        metrics_.rounds = round;
        return metrics_;
      }
    }

    // Run every node on this round's inbox.  A crashed node freezes: its
    // program does not run (state persists for a crash-restart), it sends
    // nothing, and every message in its mailbox is lost.
    bool consumed_this_round = false;
    for (NodeId v = 0; v < n; ++v) {
      const bool up = !injector || injector->node_up(v, round);
      if (up) {
        if (config_.stall_window != 0 && !mailboxes[v].empty() &&
            !last_markers[v].has_value()) {
          consumed_this_round = true;
        }
        contexts[v].begin_round(round, std::move(mailboxes[v]));
        mailboxes[v].clear();
        programs[v]->on_round(contexts[v]);
        continue;
      }
      metrics_.crashed_node_rounds += 1;
      metrics_.dropped_messages += mailboxes[v].size();
      if (config_.trace != nullptr) {
        for (const auto& lost : mailboxes[v]) {
          config_.trace->on_fault(
              FaultEvent{round, lost.from(), v, FaultKind::kReceiverCrash});
        }
      }
      mailboxes[v].clear();
      contexts[v].begin_round(round, {});  // clears any stale outbox
    }

    // Delayed messages from the previous round become deliverable now,
    // ahead of this round's sends (they are older traffic).
    for (NodeId v = 0; v < n; ++v) {
      if (!delayed_pending[v].empty()) {
        mailboxes[v] = std::move(delayed_pending[v]);
        delayed_pending[v].clear();
      }
    }

    // Bundle outboxes into physical messages and account traffic.
    RoundStats stats;
    for (NodeId v = 0; v < n; ++v) {
      auto& outbox = contexts[v].outbox();
      if (outbox.empty()) {
        continue;
      }
      // Group logical sends by destination, preserving send order.
      std::stable_sort(outbox.begin(), outbox.end(),
                       [](const PendingSend& x, const PendingSend& y) {
                         return x.to < y.to;
                       });
      std::size_t i = 0;
      while (i < outbox.size()) {
        const NodeId to = outbox[i].to;
        BitWriter bundle;
        std::uint64_t logical = 0;
        while (i < outbox.size() && outbox[i].to == to) {
          append_bits(bundle, outbox[i].bytes, outbox[i].bits);
          ++logical;
          ++i;
        }
        const std::uint64_t bits = bundle.bit_size();
        if (config_.bits_per_edge_per_round != 0 &&
            bits > config_.bits_per_edge_per_round) {
          throw CongestViolationError(
              "CONGEST violation: " + std::to_string(bits) + " bits on edge " +
              std::to_string(v) + "->" + std::to_string(to) + " in round " +
              std::to_string(round) + " (budget " +
              std::to_string(config_.bits_per_edge_per_round) + ")");
        }
        // Transmission is accounted (and traced) whether or not the message
        // survives: the sender spent the bits on the wire either way.
        stats.physical_messages += 1;
        stats.logical_messages += logical;
        stats.bits += bits;
        stats.max_bits_on_edge = std::max(stats.max_bits_on_edge, bits);
        stats.max_logical_on_edge = std::max(stats.max_logical_on_edge, logical);
        if (!cut_keys_.empty() && cut_keys_.count(directed_key(v, to)) != 0) {
          metrics_.cut_bits += bits;
        }
        if (config_.trace != nullptr) {
          config_.trace->on_physical_message(TraceEvent{
              round, v, to, static_cast<std::uint32_t>(bits),
              static_cast<std::uint32_t>(logical)});
        }

        if (injector) {
          if (!injector->link_up(v, to, round)) {
            metrics_.dropped_messages += 1;
            if (config_.trace != nullptr) {
              config_.trace->on_fault(
                  FaultEvent{round, v, to, FaultKind::kLinkDown});
            }
            continue;
          }
          switch (injector->classify(round, v, to)) {
            case FaultInjector::Delivery::kDrop:
              metrics_.dropped_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDrop});
              }
              continue;
            case FaultInjector::Delivery::kDuplicate:
              metrics_.duplicated_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDuplicate});
              }
              mailboxes[to].emplace_back(v, bundle.bytes(), bundle.bit_size());
              break;  // falls through to the normal delivery below
            case FaultInjector::Delivery::kDelay:
              metrics_.delayed_messages += 1;
              if (config_.trace != nullptr) {
                config_.trace->on_fault(
                    FaultEvent{round, v, to, FaultKind::kDelay});
              }
              delayed_pending[to].emplace_back(v, bundle.bytes(),
                                               bundle.bit_size());
              continue;
            case FaultInjector::Delivery::kDeliver:
              break;
          }
        }
        mailboxes[to].emplace_back(v, bundle.bytes(), bundle.bit_size());
      }
    }

    metrics_.total_physical_messages += stats.physical_messages;
    metrics_.total_logical_messages += stats.logical_messages;
    metrics_.total_bits += stats.bits;
    metrics_.max_bits_on_edge_round =
        std::max(metrics_.max_bits_on_edge_round, stats.max_bits_on_edge);
    metrics_.max_logical_on_edge_round =
        std::max(metrics_.max_logical_on_edge_round, stats.max_logical_on_edge);
    if (config_.record_per_round) {
      metrics_.per_round.push_back(stats);
    }

    messages_in_flight = false;
    for (NodeId v = 0; v < n; ++v) {
      if (!mailboxes[v].empty() || !delayed_pending[v].empty()) {
        messages_in_flight = true;
        break;
      }
    }

    if (config_.stall_window != 0) {
      const auto done_count = static_cast<std::size_t>(
          std::count_if(programs.begin(), programs.end(),
                        [](const auto& p) { return p->done(); }));
      bool marker_advanced = false;
      for (NodeId v = 0; v < n; ++v) {
        const auto marker = programs[v]->progress_marker();
        if (marker != last_markers[v]) {
          marker_advanced = true;
          last_markers[v] = marker;
        }
      }
      const bool progress = consumed_this_round || marker_advanced ||
                            done_count != last_done_count;
      last_done_count = done_count;
      if (progress) {
        stall_rounds = 0;
      } else if (++stall_rounds >= config_.stall_window) {
        throw StallError(
            "network stalled: no message in flight and no program finished "
            "for " +
            std::to_string(stall_rounds) + " consecutive rounds (round " +
            std::to_string(round) + ", " + std::to_string(done_count) + "/" +
            std::to_string(n) +
            " nodes done) — suspect message loss, a crash-partition, or a "
            "protocol deadlock");
      }
    }
  }
}

}  // namespace congestbc
