// Message tracing for the CONGEST simulator.
//
// A TraceSink registered in NetworkConfig observes every physical message
// (bundle) the network transmits — and, when a FaultPlan is active, every
// fault the simulator injects (congest/fault.hpp).  MessageTrace is the
// standard sink — a bounded in-memory event log with per-round
// aggregation and an ASCII activity timeline, used by the trace_demo
// example and for debugging protocol phases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "congest/fault.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// One transmitted physical message.  Under fault injection a traced
/// message may still be lost, duplicated, or delayed afterwards — its
/// fate arrives as a separate FaultEvent via on_fault().
struct TraceEvent {
  std::uint64_t round;
  NodeId from;
  NodeId to;
  /// Full-width counters: bundle sizes are budget-bounded in practice,
  /// but the simulator accounts in std::uint64_t and the trace must not
  /// silently truncate what it observes (LOCAL-model runs disable the
  /// budget entirely).
  std::uint64_t bits;
  std::uint64_t logical;  ///< logical records bundled inside

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Observer interface; implementations must tolerate high call rates.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_physical_message(const TraceEvent& event) = 0;
  /// Called once per injected fault; default no-op keeps fault-oblivious
  /// sinks working unchanged.
  virtual void on_fault(const FaultEvent& event) { (void)event; }
};

/// Bounded in-memory event log.
class MessageTrace final : public TraceSink {
 public:
  /// Records at most `max_events` individual events (aggregates keep
  /// counting past the cap).
  explicit MessageTrace(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  void on_physical_message(const TraceEvent& event) override;
  void on_fault(const FaultEvent& event) override;

  const std::vector<TraceEvent>& events() const { return events_; }
  bool truncated() const { return truncated_; }
  std::uint64_t total_messages() const { return total_messages_; }

  /// Injected-fault log (bounded by the same cap as events()).
  const std::vector<FaultEvent>& fault_events() const { return fault_events_; }
  std::uint64_t total_faults() const { return total_faults_; }

  /// Message count per round (index = round).
  const std::vector<std::uint64_t>& messages_per_round() const {
    return per_round_;
  }

  /// Events of one round (linear scan of the bounded log).
  std::vector<TraceEvent> events_in_round(std::uint64_t round) const;

  /// A fixed-width ASCII sparkline of per-round traffic — a quick visual
  /// of the pipeline's phases (tree burst, staggered waves, quiet switch,
  /// aggregation cascade).  Buckets rounds into `width` columns.
  std::string activity_timeline(unsigned width = 64) const;

 private:
  std::size_t max_events_;
  bool truncated_ = false;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_faults_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<FaultEvent> fault_events_;
  std::vector<std::uint64_t> per_round_;
};

}  // namespace congestbc
