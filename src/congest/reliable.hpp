// Self-healing transport: exact synchronous semantics over a faulty link
// layer (congest/fault.hpp).
//
// ReliableProgram wraps any NodeProgram in a per-edge synchronizer with
// sequence numbers, cumulative acks, and stop-and-wait retransmission.
// The wrapped ("inner") program executes *inner rounds*: inner round k is
// run only once the batch every neighbor produced in inner round k-1 is
// known — either received explicitly or provably empty.  Because each
// node's inner execution therefore sees exactly the inboxes of the
// fault-free synchronous run, the inner results are bit-for-bit identical
// to a run without faults, whatever the drop/duplicate/delay pattern
// (the classic alpha-synchronizer argument).  Crashes and permanent link
// cuts are *not* masked — they stall the synchronizer, which is what the
// watchdog (NetworkConfig::stall_window) is for.
//
// Frame layout, sent on an edge each outer round (all through the normal
// BitWriter path, so CONGEST accounting applies):
//
//   ack        varuint  count of the peer's batches we contiguously know
//   produced   varuint  number of inner rounds we have executed
//   quiet      1 bit    our inner program is done(): every batch we
//                       produce from `produced` on is empty, forever
//   satisfied  1 bit    we need nothing more from the peer (terminal)
//   has_batch  1 bit    a payload batch follows
//   [seq]      varuint  batch index = inner round that produced it
//   [bits]     varuint  payload length in bits
//   [payload]  `bits` bits, the bundled logical sends of that inner round
//
// The frontier rule makes empty batches free: a frame's frontier is
// `seq` when it carries a batch and `produced` otherwise, and every batch
// below the frontier that was never received explicitly is empty.  This
// is sound because the sender retransmits its *oldest* unacked non-empty
// batch until the cumulative ack passes it, so transmitting seq s proves
// all non-empty batches below s were already acked.
//
// Liveness without chatter: a node sends a frame to each neighbor every
// outer round until it is terminal with that neighbor (nothing left to
// say or learn); a terminal node still answers frames whose `satisfied`
// bit is clear, so a lagging peer can always pull the final state.
//
// Contract required of the inner program: once done() returns true it
// never sends again (violations throw InvariantError).  Both BcProgram
// (all nodes finish at the same global finalize round) and the test
// programs satisfy this.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "congest/node.hpp"
#include "snapshot/snapshottable.hpp"

namespace congestbc {

/// Worst-case frame overhead on top of the inner payload, in bits, when
/// the inner program runs at most `max_inner_rounds` inner rounds under a
/// per-edge budget of `inner_budget_bits`.
std::uint64_t reliable_header_bits(std::uint64_t inner_budget_bits,
                                   std::uint64_t max_inner_rounds);

/// The outer per-edge-per-round budget that admits any inner program
/// legal under `inner_budget_bits`: inner budget plus frame overhead.
std::uint64_t reliable_budget_bits(std::uint64_t inner_budget_bits,
                                   std::uint64_t max_inner_rounds);

/// NodeProgram decorator adding the reliable transport.  Construct one
/// per node, each wrapping that node's inner program.
class ReliableProgram final : public NodeProgram, public Snapshottable {
 public:
  /// `inner_budget_bits` is the CONGEST budget the inner program was
  /// written against; each produced batch is checked against it
  /// (CongestViolationError), mirroring the fault-free simulator.
  /// 0 disables the check.
  explicit ReliableProgram(std::unique_ptr<NodeProgram> inner,
                           std::uint64_t inner_budget_bits = 0);
  ~ReliableProgram() override;

  void on_round(NodeContext& ctx) override;
  bool done() const override;

  /// Checkpoint support: the complete synchronizer state — per-peer ARQ
  /// windows (stored batches, unacked queue, cumulative acks), the
  /// alpha-synchronizer counters (executed/quiet), and the wrapped inner
  /// program as a nested length-prefixed blob (decorator convention,
  /// snapshot/snapshottable.hpp).  The inner program must itself be
  /// Snapshottable.
  void save_state(BitWriter& w) const override;
  void load_state(BitReader& r) override;

  /// Watchdog hook: semantic progress is inner rounds executed, not the
  /// frame chatter — retransmitting into a dead peer is not progress.
  std::optional<std::uint64_t> progress_marker() const override {
    return executed_;
  }

  NodeProgram& inner() { return *inner_; }
  const NodeProgram& inner() const { return *inner_; }

  /// Inner rounds executed so far (== the fault-free round count once the
  /// run completes).
  std::uint64_t inner_rounds() const { return executed_; }

  /// Batch transmissions beyond the first attempt — the direct cost of
  /// message loss.
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  /// A produced, not-yet-acked batch (stop-and-wait: only the front of
  /// the queue is on the wire).
  struct OutBatch {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> bytes;
    std::size_t bits = 0;
    bool transmitted = false;
  };

  /// Everything we track about one neighbor.
  struct PeerState {
    NodeId id = 0;
    // What we know about the peer's production.
    std::uint64_t known_prefix = 0;  ///< batches [0, known_prefix) known
    std::uint64_t peer_produced = 0;
    bool peer_quiet = false;
    /// Explicit batches received but not yet consumed, by seq.
    std::map<std::uint64_t, std::pair<std::vector<std::uint8_t>, std::size_t>>
        stored;
    // Our traffic toward the peer.
    std::deque<OutBatch> unacked;
    std::uint64_t acked = 0;  ///< peer's cumulative ack of our batches
    /// A frame with a clear `satisfied` bit arrived this outer round —
    /// the peer still needs something, so answer even if terminal.
    bool polled_needy = false;
  };

  class InnerContext;

  void init_peers(const NodeContext& ctx);
  PeerState* find_peer(NodeId id);
  /// True when every batch of `p` with index <= `index` is known.
  bool knows_all_through(const PeerState& p, std::uint64_t index) const;
  bool terminal_with(const PeerState& p) const;
  void parse_frame(PeerState& p, const InboundMessage& message);
  void maybe_execute_inner_round(const NodeContext& ctx);
  void send_frames(NodeContext& ctx);

  std::unique_ptr<NodeProgram> inner_;
  std::uint64_t inner_budget_bits_;
  bool initialized_ = false;
  bool quiet_ = false;          ///< inner done() latched
  std::uint64_t executed_ = 0;  ///< inner rounds run so far
  std::uint64_t retransmissions_ = 0;
  std::vector<PeerState> peers_;  // sorted by neighbor id
};

}  // namespace congestbc
