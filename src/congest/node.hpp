// Node-side programming model of the CONGEST simulator.
//
// A NodeProgram is the code running on one network node.  Its world view
// is deliberately narrow, matching the model in the paper's Section III:
//   * its own id and its neighbors' ids;
//   * the total node count N (standard CONGEST assumption; it fixes the
//     O(log N) field widths);
//   * the synchronized round number;
//   * the messages that arrived at the start of the round.
// It must NOT inspect the global graph — all global information has to be
// learned through messages.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bit_io.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// A delivered message: sender plus bit-exact payload.  Two storage
/// modes share one type: the simulator's hot path delivers *views* into
/// per-round arena memory (congest/arena.hpp) that outlives the message
/// by construction, while the owning form copies the bytes — used where a
/// payload must survive past the round (the delay-fault parking buffer,
/// the reliable transport's reassembled batches, the legacy engine).
class InboundMessage {
 public:
  /// Owning: the message keeps the bytes alive itself.
  InboundMessage(NodeId from, std::vector<std::uint8_t> bytes,
                 std::size_t bits)
      : from_(from), owned_(std::move(bytes)), bits_(bits) {}

  /// Non-owning view; `data` must stay valid until the message is read
  /// (the simulator guarantees one full round).
  InboundMessage(NodeId from, const std::uint8_t* data, std::size_t bits)
      : from_(from), data_(data), bits_(bits) {}

  NodeId from() const { return from_; }
  std::size_t bit_size() const { return bits_; }

  /// A fresh reader positioned at the start of the payload.
  BitReader reader() const {
    return BitReader(data_ != nullptr ? data_ : owned_.data(), bits_);
  }

 private:
  NodeId from_;
  std::vector<std::uint8_t> owned_;       // empty in view mode
  const std::uint8_t* data_ = nullptr;    // null in owning mode
  std::size_t bits_;
};

/// The per-round window a program sees (provided by the Network).
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual NodeId id() const = 0;
  virtual std::uint32_t num_nodes() const = 0;
  virtual std::span<const NodeId> neighbors() const = 0;
  virtual std::uint64_t round() const = 0;
  virtual const std::vector<InboundMessage>& inbox() const = 0;

  /// Queues a logical message to a neighbor; it arrives at the start of
  /// the next round.  Logical messages to the same neighbor in the same
  /// round are bundled into one physical message (DESIGN.md D3); the
  /// simulator accounts bits and logical counts per (edge, round).
  virtual void send(NodeId neighbor, const BitWriter& payload) = 0;
};

/// next_active_round(): the program will act at the next round the engine
/// asks about — the conservative default that keeps every program correct
/// under the frontier engine (the node is simply scheduled every round).
inline constexpr std::uint64_t kActiveEveryRound = 0;

/// next_active_round(): the program is purely reactive — it changes state
/// or sends only in rounds where its inbox is non-empty, so the engine
/// need not run it until a message arrives.
inline constexpr std::uint64_t kActiveOnMessage = ~std::uint64_t{0};

/// Code running on one node.  `on_round` is invoked with that round's
/// inbox — possibly concurrently across nodes (NetworkConfig::threads):
/// nodes in one round are independent in the CONGEST model, so a program
/// must only touch its own state and its NodeContext, never anything
/// shared.  Delivery and all accounting stay sequential in node-id order,
/// so results are identical either way.  The default (arena and legacy)
/// engines run every node every round; the frontier engine runs a node
/// only in rounds where it has mail or where next_active_round() said it
/// might act — identical observable behavior, because a skipped round is
/// one the program itself declared a no-op.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;

  /// One synchronous round: read ctx.inbox(), update state, ctx.send(...).
  virtual void on_round(NodeContext& ctx) = 0;

  /// Frontier-scheduling contract: the earliest round >= `from` in which
  /// this node might change state or send *without receiving a message*
  /// (a pending timer, a scheduled send, a bootstrap).  Rounds before the
  /// returned value with an empty inbox are guaranteed no-ops, so the
  /// engine may skip them; message arrival always wakes a node regardless.
  /// Return kActiveOnMessage when no such spontaneous action is pending,
  /// or kActiveEveryRound (the default) to opt out of sparse scheduling
  /// entirely.  Over-approximating (waking too often) is always safe;
  /// under-approximating breaks the run.
  virtual std::uint64_t next_active_round(std::uint64_t from) const {
    (void)from;
    return kActiveEveryRound;
  }

  /// Local termination flag; the simulation stops once every node is done
  /// and no messages are in flight.  (Distributed termination *detection*
  /// is the algorithms' own responsibility — see the phase switch in
  /// algo/ — this flag only lets the harness stop the clock.)
  virtual bool done() const = 0;

  /// Stall-watchdog hook (NetworkConfig::stall_window).  Default nullopt:
  /// the watchdog counts every message this node consumes as progress —
  /// right for ordinary programs, whose traffic is all payload.  A
  /// program that emits control chatter regardless of progress (the
  /// reliable transport retransmitting into a dead peer forever) must
  /// instead return a counter that changes exactly when it makes semantic
  /// progress; returning a value also opts the node out of the
  /// consumption fallback.
  virtual std::optional<std::uint64_t> progress_marker() const {
    return std::nullopt;
  }
};

}  // namespace congestbc
