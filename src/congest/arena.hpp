// Per-round bump arena for message payloads.
//
// The round engine (congest/network.cpp) double-buffers two of these:
// every physical message delivered in round r has its payload bump-copied
// into arena[r % 2], and the mailboxes hold (pointer, bit-count) views
// into that memory.  The views are consumed by the programs in round
// r + 1, and arena[r % 2] is not reset until the delivery phase of round
// r + 2 — strictly after the last reader — so the lifetime argument is
// positional, with no per-message ownership or refcounting.  One-round
// delay faults fit inside the same window (parked payloads are re-copied
// into owning storage anyway, because the fault path is cold).
//
// reset() is O(1) amortized and keeps the high-water block, so after the
// first few rounds the steady state performs zero heap allocations per
// round; `block_allocations()` counts the mallocs that did happen, which
// bench_simulator reports as the engine's allocation trajectory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace congestbc {

/// Bump allocator with stable pointers and bulk reset.
class PayloadArena {
 public:
  explicit PayloadArena(std::size_t initial_bytes = 1 << 12)
      : initial_bytes_(initial_bytes < 64 ? 64 : initial_bytes) {}

  /// Returns `bytes` bytes of uninitialized storage; the pointer stays
  /// valid until the next reset() (blocks are never moved or reused
  /// within a generation).  Zero-byte requests get a valid dangling-free
  /// pointer into the current block.
  std::uint8_t* allocate(std::size_t bytes) {
    if (active_ >= blocks_.size() ||
        blocks_[active_].used + bytes > blocks_[active_].size) {
      next_block(bytes);
    }
    Block& b = blocks_[active_];
    std::uint8_t* out = b.data.get() + b.used;
    b.used += bytes;
    in_use_ += bytes;
    return out;
  }

  /// Recycles every block for the next generation.  When the previous
  /// generation spilled into multiple blocks, they are coalesced into one
  /// block of the total size so the steady state is a single block and
  /// zero allocations per round.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) {
        total += b.size;
      }
      blocks_.clear();
      blocks_.push_back(make_block(total));
    } else if (!blocks_.empty()) {
      blocks_.front().used = 0;
    }
    active_ = 0;
    in_use_ = 0;
  }

  /// Heap allocations performed so far (block acquisitions); flat after
  /// warm-up on a steady workload.
  std::uint64_t block_allocations() const { return block_allocations_; }

  /// Bytes handed out since the last reset().
  std::size_t bytes_in_use() const { return in_use_; }

  /// Total capacity currently held (the high-water footprint).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) {
      total += b.size;
    }
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block make_block(std::size_t at_least) {
    std::size_t size = initial_bytes_;
    while (size < at_least) {
      size *= 2;
    }
    ++block_allocations_;
    return Block{std::make_unique<std::uint8_t[]>(size), size, 0};
  }

  void next_block(std::size_t need) {
    // Advance to an existing block that fits, else grow: each new block
    // doubles the largest so far, keeping total blocks logarithmic.
    while (active_ + 1 < blocks_.size()) {
      ++active_;
      blocks_[active_].used = 0;
      if (blocks_[active_].size >= need) {
        return;
      }
    }
    std::size_t grow = initial_bytes_;
    for (const Block& b : blocks_) {
      grow = grow < b.size ? b.size : grow;
    }
    blocks_.push_back(make_block(grow * 2 >= need ? grow * 2 : need));
    active_ = blocks_.size() - 1;
  }

  std::size_t initial_bytes_;
  std::vector<Block> blocks_;
  std::size_t active_ = 0;
  std::size_t in_use_ = 0;
  std::uint64_t block_allocations_ = 0;
};

}  // namespace congestbc
