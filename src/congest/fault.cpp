#include "congest/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.hpp"

namespace congestbc {

namespace {

std::uint64_t undirected_key(NodeId u, NodeId v) {
  const NodeId lo = u < v ? u : v;
  const NodeId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// SplitMix64 finalizer — the same mixer as common/rng.hpp, applied as a
/// stateless hash so a message's fate depends only on (seed, round,
/// from, to), never on how many other messages were classified before it.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) for one (seed, round, from, to) tuple.
double message_draw(std::uint64_t seed, std::uint64_t round, NodeId from,
                    NodeId to) {
  std::uint64_t h = seed + 0x9E3779B97F4A7C15ull;
  h = mix64(h ^ mix64(round + 0x9E3779B97F4A7C15ull));
  h = mix64(h ^ mix64((static_cast<std::uint64_t>(from) << 32) | to));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check_probability(double p, const char* name) {
  CBC_EXPECTS(std::isfinite(p) && p >= 0.0 && p <= 1.0,
              std::string(name) + " probability must be in [0, 1]");
}

void check_window(const OutageWindow& window) {
  CBC_EXPECTS(window.first_round <= window.last_round,
              "fault window is inverted (first_round > last_round)");
}

bool window_hits(const std::vector<OutageWindow>& windows,
                 std::uint64_t round) {
  for (const auto& w : windows) {
    if (w.covers(round)) {
      return true;
    }
  }
  return false;
}

std::uint64_t parse_round_bound(const std::string& text) {
  if (text == "inf" || text == "forever" || text == "%") {
    return FaultPlan::kForever;
  }
  return static_cast<std::uint64_t>(std::stoull(text));
}

/// Splits "FIRST-LAST" (LAST may be "inf") into an OutageWindow.
OutageWindow parse_window(const std::string& text) {
  const auto dash = text.find('-');
  CBC_EXPECTS(dash != std::string::npos,
              "fault window must be FIRST-LAST, got '" + text + "'");
  OutageWindow window;
  window.first_round = parse_round_bound(text.substr(0, dash));
  window.last_round = parse_round_bound(text.substr(dash + 1));
  check_window(window);
  return window;
}

}  // namespace

void FaultPlan::validate() const {
  check_probability(drop_probability, "drop");
  check_probability(duplicate_probability, "duplicate");
  check_probability(delay_probability, "delay");
  CBC_EXPECTS(
      drop_probability + duplicate_probability + delay_probability <= 1.0,
      "drop + duplicate + delay probabilities must sum to at most 1");
  for (const auto& fault : link_faults) {
    check_window(fault.window);
    CBC_EXPECTS(fault.edge.u != fault.edge.v, "link fault on a self-loop");
  }
  for (const auto& fault : node_faults) {
    check_window(fault.window);
  }
}

FaultPlan FaultPlan::uniform_drop(std::uint64_t seed, double probability) {
  check_probability(probability, "drop");
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_probability = probability;
  return plan;
}

FaultPlan FaultPlan::drop_everything() {
  FaultPlan plan;
  plan.drop_probability = 1.0;
  return plan;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) {
      continue;
    }
    const auto eq = item.find('=');
    CBC_EXPECTS(eq != std::string::npos,
                "fault spec items must be key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(std::stoull(value));
    } else if (key == "drop") {
      plan.drop_probability = std::stod(value);
    } else if (key == "dup") {
      plan.duplicate_probability = std::stod(value);
    } else if (key == "delay") {
      plan.delay_probability = std::stod(value);
    } else if (key == "crash") {
      // crash=NODE:FIRST-LAST
      const auto colon = value.find(':');
      CBC_EXPECTS(colon != std::string::npos,
                  "crash spec must be NODE:FIRST-LAST, got '" + value + "'");
      NodeFault fault;
      fault.node =
          static_cast<NodeId>(std::stoul(value.substr(0, colon)));
      fault.window = parse_window(value.substr(colon + 1));
      plan.node_faults.push_back(fault);
    } else if (key == "link") {
      // link=U-V:FIRST-LAST
      const auto colon = value.find(':');
      CBC_EXPECTS(colon != std::string::npos,
                  "link spec must be U-V:FIRST-LAST, got '" + value + "'");
      const std::string edge_text = value.substr(0, colon);
      const auto dash = edge_text.find('-');
      CBC_EXPECTS(dash != std::string::npos,
                  "link endpoints must be U-V, got '" + edge_text + "'");
      LinkFault fault;
      fault.edge.u =
          static_cast<NodeId>(std::stoul(edge_text.substr(0, dash)));
      fault.edge.v =
          static_cast<NodeId>(std::stoul(edge_text.substr(dash + 1)));
      fault.window = parse_window(value.substr(colon + 1));
      plan.link_faults.push_back(fault);
    } else {
      throw PreconditionError("unknown fault spec key: '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

std::string FaultPlan::describe() const {
  if (empty()) {
    return "no faults";
  }
  std::ostringstream os;
  os << "seed=" << seed;
  if (drop_probability > 0.0) {
    os << " drop=" << drop_probability;
  }
  if (duplicate_probability > 0.0) {
    os << " dup=" << duplicate_probability;
  }
  if (delay_probability > 0.0) {
    os << " delay=" << delay_probability;
  }
  if (!node_faults.empty()) {
    os << " crashes=" << node_faults.size();
  }
  if (!link_faults.empty()) {
    os << " link-outages=" << link_faults.size();
  }
  return os.str();
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kReceiverCrash:
      return "receiver-crash";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan& plan, const Graph& graph)
    : plan_(plan), graph_(&graph) {
  plan_.validate();
  node_windows_.resize(graph.num_nodes());
  for (const auto& fault : plan_.node_faults) {
    CBC_EXPECTS(fault.node < graph.num_nodes(),
                "fault plan crashes node " + std::to_string(fault.node) +
                    " outside the graph");
    node_windows_[fault.node].push_back(fault.window);
  }
  for (const auto& fault : plan_.link_faults) {
    CBC_EXPECTS(graph.has_edge(fault.edge.u, fault.edge.v),
                "fault plan downs link " + std::to_string(fault.edge.u) +
                    "-" + std::to_string(fault.edge.v) +
                    " not present in the graph");
    link_windows_[undirected_key(fault.edge.u, fault.edge.v)].push_back(
        fault.window);
  }
}

bool FaultInjector::node_up(NodeId v, std::uint64_t round) const {
  return !window_hits(node_windows_[v], round);
}

bool FaultInjector::link_up(NodeId u, NodeId v, std::uint64_t round) const {
  const auto it = link_windows_.find(undirected_key(u, v));
  return it == link_windows_.end() || !window_hits(it->second, round);
}

FaultInjector::Delivery FaultInjector::classify(std::uint64_t round,
                                                NodeId from, NodeId to) const {
  const double total = plan_.drop_probability + plan_.duplicate_probability +
                       plan_.delay_probability;
  if (total == 0.0) {
    return Delivery::kDeliver;
  }
  const double draw = message_draw(plan_.seed, round, from, to);
  if (draw < plan_.drop_probability) {
    return Delivery::kDrop;
  }
  if (draw < plan_.drop_probability + plan_.duplicate_probability) {
    return Delivery::kDuplicate;
  }
  if (draw < total) {
    return Delivery::kDelay;
  }
  return Delivery::kDeliver;
}

bool FaultInjector::permanently_partitions() const {
  const NodeId n = graph_->num_nodes();
  // Survivors: nodes with no window reaching kForever.
  std::vector<bool> dead(n, false);
  for (const auto& fault : plan_.node_faults) {
    if (fault.window.last_round == FaultPlan::kForever) {
      dead[fault.node] = true;
    }
  }
  NodeId start = n;
  NodeId alive = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!dead[v]) {
      ++alive;
      if (start == n) {
        start = v;
      }
    }
  }
  if (alive <= 1) {
    // Everyone (or everyone but one) is gone: the network cannot finish,
    // and "partitioned" is the honest classification unless nothing died.
    return alive < n;
  }
  // BFS over surviving nodes and permanently-up links.
  std::vector<bool> visited(n, false);
  std::vector<NodeId> queue{start};
  visited[start] = true;
  NodeId reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    for (const NodeId w : graph_->neighbors(v)) {
      if (visited[w] || dead[w]) {
        continue;
      }
      const auto it = link_windows_.find(undirected_key(v, w));
      if (it != link_windows_.end()) {
        bool cut_forever = false;
        for (const auto& window : it->second) {
          if (window.last_round == FaultPlan::kForever) {
            cut_forever = true;
            break;
          }
        }
        if (cut_forever) {
          continue;
        }
      }
      visited[w] = true;
      ++reached;
      queue.push_back(w);
    }
  }
  return reached < alive;
}

}  // namespace congestbc
