#include "congest/trace.hpp"

#include <algorithm>

namespace congestbc {

void MessageTrace::on_physical_message(const TraceEvent& event) {
  ++total_messages_;
  if (per_round_.size() <= event.round) {
    per_round_.resize(event.round + 1, 0);
  }
  ++per_round_[event.round];
  if (events_.size() < max_events_) {
    events_.push_back(event);
  } else {
    truncated_ = true;
  }
}

void MessageTrace::on_fault(const FaultEvent& event) {
  ++total_faults_;
  if (fault_events_.size() < max_events_) {
    fault_events_.push_back(event);
  } else {
    truncated_ = true;
  }
}

std::vector<TraceEvent> MessageTrace::events_in_round(
    std::uint64_t round) const {
  std::vector<TraceEvent> result;
  for (const auto& event : events_) {
    if (event.round == round) {
      result.push_back(event);
    }
  }
  return result;
}

std::string MessageTrace::activity_timeline(unsigned width) const {
  if (per_round_.empty() || width == 0) {
    return "";
  }
  static constexpr char kLevels[] = " .:-=+*#%@";
  const std::size_t rounds = per_round_.size();
  std::vector<std::uint64_t> buckets(width, 0);
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto bucket = static_cast<std::size_t>(
        static_cast<unsigned long long>(r) * width / rounds);
    buckets[bucket] += per_round_[r];
  }
  const std::uint64_t peak = *std::max_element(buckets.begin(), buckets.end());
  std::string line;
  line.reserve(width);
  for (const auto value : buckets) {
    if (peak == 0) {
      line.push_back(' ');
      continue;
    }
    const auto level =
        static_cast<std::size_t>(value * 9 / peak);  // 0..9
    line.push_back(kLevels[level]);
  }
  return line;
}

}  // namespace congestbc
