// Measurement plane of the CONGEST simulator.
//
// The paper's claims are about rounds (Theorem 3) and per-edge bits
// (Lemmas 3/5); the lower-bound experiments additionally need the bits
// crossing a designated cut (Theorems 5/6).  RunMetrics captures all of
// that, per round and in aggregate.
#pragma once

#include <cstdint>
#include <vector>

namespace congestbc {

/// Aggregates for one simulated round.
struct RoundStats {
  std::uint64_t physical_messages = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t bits = 0;
  /// Largest physical message (= bundled bits) on any directed edge.
  std::uint64_t max_bits_on_edge = 0;
  /// Largest number of logical messages bundled on any directed edge.
  std::uint64_t max_logical_on_edge = 0;
};

/// Whole-run measurements.
struct RunMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t total_physical_messages = 0;
  std::uint64_t total_logical_messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_bits_on_edge_round = 0;
  std::uint64_t max_logical_on_edge_round = 0;
  /// Bits that crossed the registered cut (either direction), total.
  std::uint64_t cut_bits = 0;
  /// Per-round detail (index = round number).
  std::vector<RoundStats> per_round;

  /// Max logical messages bundled on any edge within [first, last] rounds
  /// inclusive — used to verify Lemma 4 over the aggregation epoch.
  std::uint64_t max_logical_on_edge_in(std::uint64_t first,
                                       std::uint64_t last) const {
    std::uint64_t best = 0;
    for (std::uint64_t r = first; r <= last && r < per_round.size(); ++r) {
      best = best < per_round[r].max_logical_on_edge
                 ? per_round[r].max_logical_on_edge
                 : best;
    }
    return best;
  }
};

}  // namespace congestbc
