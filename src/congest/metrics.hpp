// Measurement plane of the CONGEST simulator.
//
// The paper's claims are about rounds (Theorem 3) and per-edge bits
// (Lemmas 3/5); the lower-bound experiments additionally need the bits
// crossing a designated cut (Theorems 5/6); the fault-injection layer
// (congest/fault.hpp) additionally counts every adversity it injects.
// RunMetrics captures all of that, per round and in aggregate, and is
// equality-comparable so determinism tests can assert byte-identical
// replays.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace congestbc {

/// Aggregates for one simulated round.
struct RoundStats {
  std::uint64_t physical_messages = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t bits = 0;
  /// Largest physical message (= bundled bits) on any directed edge.
  std::uint64_t max_bits_on_edge = 0;
  /// Largest number of logical messages bundled on any directed edge.
  std::uint64_t max_logical_on_edge = 0;

  friend bool operator==(const RoundStats&, const RoundStats&) = default;
};

/// Whole-run measurements.
///
/// Every counter is deliberately std::uint64_t (audited when the
/// snapshot subsystem landed: totals here and in RoundStats would wrap a
/// 32-bit type on large runs — total_bits alone passes 2^32 near
/// ~50k rounds of karate — and the snapshot varuint encoding assumes
/// full-width values round-trip).  Keep it that way when adding fields.
struct RunMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t total_physical_messages = 0;
  std::uint64_t total_logical_messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t max_bits_on_edge_round = 0;
  std::uint64_t max_logical_on_edge_round = 0;
  /// Bits that crossed the registered cut (either direction), total.
  std::uint64_t cut_bits = 0;
  // --- injected-fault accounting (all zero on a fault-free run) ---
  /// Physical messages lost: hash-drawn drops, link outages, and
  /// messages that arrived at a crashed receiver.
  std::uint64_t dropped_messages = 0;
  /// Physical messages delivered twice in the same round.
  std::uint64_t duplicated_messages = 0;
  /// Physical messages delivered one round late.
  std::uint64_t delayed_messages = 0;
  /// Sum over rounds of the number of nodes crashed in that round.
  std::uint64_t crashed_node_rounds = 0;
  /// Per-round detail (index = round number).
  std::vector<RoundStats> per_round;

  /// Max logical messages bundled on any edge within [first, last] rounds
  /// inclusive — used to verify Lemma 4 over the aggregation epoch.
  /// `last` is clamped to the recorded range (callers conventionally pass
  /// `rounds`, which is one past the final recorded index), but the
  /// window must *start* inside it: querying entirely unrecorded rounds
  /// would return 0 and let a Lemma-4 check pass vacuously, so that is a
  /// precondition violation instead of a silent truncation.
  std::uint64_t max_logical_on_edge_in(std::uint64_t first,
                                       std::uint64_t last) const {
    CBC_EXPECTS(first <= last, "inverted round window");
    CBC_EXPECTS(first < per_round.size(),
                "max_logical_on_edge_in window starts at round " +
                    std::to_string(first) + " but only " +
                    std::to_string(per_round.size()) +
                    " rounds were recorded (was record_per_round off?)");
    std::uint64_t best = 0;
    for (std::uint64_t r = first; r <= last && r < per_round.size(); ++r) {
      best = best < per_round[r].max_logical_on_edge
                 ? per_round[r].max_logical_on_edge
                 : best;
    }
    return best;
  }

  friend bool operator==(const RunMetrics&, const RunMetrics&) = default;
};

}  // namespace congestbc
