// The synchronous CONGEST network simulator (paper Section III-A).
//
// Semantics:
//   * time advances in globally synchronized rounds;
//   * in each round every node runs its NodeProgram once, reading the
//     messages sent to it in the previous round and sending at most one
//     physical message per incident edge;
//   * a physical message is the bundle of the logical messages queued to
//     that neighbor in that round; its size is accounted in exact bits and
//     checked against the configured budget B = O(log N)
//     (a violation throws InvariantError — the simulator *faults* on any
//     CONGEST violation instead of silently allowing it);
//   * delivery is reliable and takes exactly one round.
//
// This simulator substitutes for the paper's (hypothetical) physical
// message-passing network: the paper's complexity measure is rounds, which
// the simulator counts exactly (see DESIGN.md, substitutions).
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>

#include "congest/metrics.hpp"
#include "congest/node.hpp"
#include "graph/graph.hpp"

namespace congestbc {

class TraceSink;  // congest/trace.hpp

/// Simulator knobs.
struct NetworkConfig {
  /// Per-directed-edge per-round bit budget; 0 disables the check (LOCAL
  /// model).  Typical choice: congest_budget_bits(N).
  std::uint64_t bits_per_edge_per_round = 0;
  /// Hard stop — guards against non-terminating programs under test.
  std::uint64_t max_rounds = 10'000'000;
  /// Record per-round stats (cheap; on by default).
  bool record_per_round = true;
  /// Optional observer of every delivered physical message.
  TraceSink* trace = nullptr;
};

/// The library's default CONGEST budget: beta * ceil(log2 N) bits with
/// beta = 16 — the explicit constant behind every "O(log N) bits" claim
/// (a bundle of a BFS-wave payload, a DFS token, and control fields fits;
/// see DESIGN.md D3).
std::uint64_t congest_budget_bits(std::uint32_t num_nodes);

/// Builds the program for one node.  It receives only the node id; all
/// topology knowledge must come from NodeContext.
using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;

/// A simulated network over a fixed connected graph.
class Network {
 public:
  Network(const Graph& graph, NetworkConfig config);

  /// Registers the undirected edges whose traffic counts toward
  /// RunMetrics::cut_bits.  Must be called before run().
  void register_cut(const std::vector<Edge>& cut_edges);

  /// Runs programs until every node reports done() and no message is in
  /// flight.  Throws InvariantError on a CONGEST violation or when
  /// max_rounds is exceeded.
  RunMetrics run(const ProgramFactory& factory);

  /// Same, over caller-owned programs (programs[v] runs on node v); the
  /// caller can inspect per-node results afterwards.
  RunMetrics run(std::vector<std::unique_ptr<NodeProgram>>& programs);

  const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
  NetworkConfig config_;
  std::unordered_set<std::uint64_t> cut_keys_;  // directed-edge keys
};

}  // namespace congestbc
