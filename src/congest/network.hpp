// The synchronous CONGEST network simulator (paper Section III-A).
//
// Semantics:
//   * time advances in globally synchronized rounds;
//   * in each round every node runs its NodeProgram once, reading the
//     messages sent to it in the previous round and sending at most one
//     physical message per incident edge;
//   * a physical message is the bundle of the logical messages queued to
//     that neighbor in that round; its size is accounted in exact bits and
//     checked against the configured budget B = O(log N)
//     (a violation throws CongestViolationError — the simulator *faults*
//     on any CONGEST violation instead of silently allowing it);
//   * by default delivery is reliable and takes exactly one round; an
//     optional FaultPlan (congest/fault.hpp) injects deterministic drops,
//     duplicates, one-round delays, link outages, and node crashes, all
//     counted in RunMetrics and visible to the TraceSink.
//
// Execution engines (DESIGN.md §8/§13): each round splits into a
// node-execution phase — embarrassingly parallel across nodes, run on
// NetworkConfig::threads lanes — and a sequential merge phase that
// bundles outboxes, applies faults, accounts metrics, and feeds the
// trace in (node, adjacency) order.  Payloads live in double-buffered
// bump arenas (congest/arena.hpp), so the hot path does no per-message
// heap allocation and results are bit-identical for every thread count
// and every EngineKind.  The default frontier engine additionally runs
// only the *active* nodes each round (mail or a due
// NodeProgram::next_active_round timer) and fast-forwards quiescent
// stretches; the PR-2 static-partition engine and the PR-1 sequential
// allocating engine are kept as baselines.
//
// This simulator substitutes for the paper's (hypothetical) physical
// message-passing network: the paper's complexity measure is rounds, which
// the simulator counts exactly (see DESIGN.md, substitutions).
#pragma once

#include <atomic>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "congest/fault.hpp"
#include "congest/metrics.hpp"
#include "congest/node.hpp"
#include "graph/graph.hpp"
#include "snapshot/checkpoint.hpp"

namespace congestbc {

namespace obs {
class FlightRecorder;  // obs/recorder.hpp
}

class TraceSink;  // congest/trace.hpp

/// The run exceeded NetworkConfig::max_rounds — a runaway-program guard,
/// not a model violation.
class RoundLimitError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

/// A program broke the CONGEST model (per-edge-per-round bit budget).
class CongestViolationError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

/// The watchdog saw no delivery progress for NetworkConfig::stall_window
/// consecutive rounds while the run was unfinished — the signature of a
/// drop-everything fault plan, a crash-partition, or a deadlocked
/// protocol.
class StallError : public InvariantError {
 public:
  using InvariantError::InvariantError;
};

/// Which round engine executes the run.  All three produce bit-identical
/// metrics, traces, fault outcomes, and program results (asserted by
/// tests/frontier_test.cpp); they differ only in speed and memory.
enum class EngineKind : std::uint8_t {
  /// Frontier-aware scheduler (default): each round runs only the nodes
  /// with mail or a due timer (NodeProgram::next_active_round), partitions
  /// the *sorted active set* across lanes with per-lane arenas/outboxes,
  /// and fast-forwards fully quiescent stretches.  O(active) per round
  /// instead of O(N) — the engine that makes 10^5..10^6-node graphs
  /// tractable.
  kFrontier = 0,
  /// PR-2 static-partition engine: every node runs every round over a
  /// fixed node-range split, global double-buffered arena.
  kArena = 1,
  /// PR-1 sequential allocating engine (per-send heap copies, per-outbox
  /// stable_sort) — the reproducible baseline.
  kLegacy = 2,
};

/// Simulator knobs.
struct NetworkConfig {
  /// Per-directed-edge per-round bit budget; 0 disables the check (LOCAL
  /// model).  Typical choice: congest_budget_bits(N).
  std::uint64_t bits_per_edge_per_round = 0;
  /// Hard stop — guards against non-terminating programs under test.
  std::uint64_t max_rounds = 10'000'000;
  /// Record per-round stats (cheap; on by default).
  bool record_per_round = true;
  /// Optional observer of every physical message (and injected fault).
  TraceSink* trace = nullptr;
  /// Optional flight recorder (obs/recorder.hpp): both engines feed it
  /// wall-clock spans for every round phase.  Pure observation — the
  /// recorder never influences execution, so results, metrics, and
  /// traces are bit-identical with it on or off (tests/obs_test.cpp),
  /// and like `trace` it is excluded from options fingerprints.  Must
  /// outlive run().
  obs::FlightRecorder* recorder = nullptr;
  /// Optional fault schedule; nullptr or an empty plan = the paper's
  /// reliable network.  Must outlive run().
  const FaultPlan* faults = nullptr;
  /// Watchdog: throw StallError after this many consecutive rounds with
  /// no message delivered and no program newly done while the run is
  /// unfinished.  0 disables (only max_rounds guards).  Pick a window
  /// larger than any legitimate quiet stretch of the protocol (the BC
  /// pipeline idles O(N + D) rounds replaying the aggregation clock).
  std::uint64_t stall_window = 0;
  /// Lanes for the node-execution phase: 1 = sequential (default), 0 =
  /// one per hardware thread.  Metrics, traces, fault outcomes, and
  /// program results are bit-identical for every value — the merge phase
  /// is always sequential in node-id order.
  unsigned threads = 1;
  /// Engine selection; results are bit-identical across all values.
  EngineKind engine = EngineKind::kFrontier;
  /// Compatibility alias: true forces EngineKind::kLegacy (the PR-1
  /// sequential allocating engine; ignores `threads`).  Kept because the
  /// flag predates the enum and is plumbed through existing callers.
  bool legacy_engine = false;
  /// Frontier engine: active sets smaller than this run on the calling
  /// thread even when a pool exists — chunking a handful of nodes across
  /// lanes costs more in wakeups than it saves (and this is what makes
  /// the engine "never slower than 1 thread" on small graphs).
  std::size_t frontier_min_parallel_nodes = 256;
  /// Frontier engine: clamp the lane count to the hardware thread count.
  /// Oversubscribing lanes can only add scheduling overhead; tests turn
  /// this off to exercise real multi-lane dispatch on any host.
  bool frontier_clamp_lanes = true;
  /// Periodic checkpointing (snapshot/checkpoint.hpp): when enabled, the
  /// run writes a full snapshot at every round divisible by
  /// `checkpoint.every_rounds` (atomic write-rename, newest
  /// `checkpoint.keep_last` kept), so a crashed or killed run can restart
  /// from the last boundary via load_snapshot() instead of round 0.
  /// Requires every program to implement Snapshottable.
  CheckpointPolicy checkpoint{};
  /// Suspend the run at the start of this round (0 = never): run()
  /// captures a snapshot, returns the partial metrics, and
  /// Network::suspended() turns true; save_snapshot() then serializes the
  /// captured state.  The deterministic stand-in for "the operator killed
  /// the process here" used by the resume tests and the CLI's
  /// --halt-at-round.
  std::uint64_t halt_at_round = 0;
  /// Cooperative external halt: when non-null and the pointee is true at
  /// a round boundary, the run suspends there exactly like halt_at_round
  /// (snapshot captured; checkpoint written when a checkpoint directory
  /// is configured).  Unlike halt_at_round the *boundary reached* depends
  /// on when the flag was raised, but the snapshot taken there is a
  /// normal boundary snapshot: resuming it reproduces the uninterrupted
  /// run bit for bit.  This is how the serving daemon (src/service)
  /// drains in-flight jobs on SIGTERM.  Must outlive run().
  const std::atomic<bool>* halt_request = nullptr;
};

/// The library's default CONGEST budget: beta * ceil(log2 N) bits with
/// beta = 16 — the explicit constant behind every "O(log N) bits" claim
/// (a bundle of a BFS-wave payload, a DFS token, and control fields fits;
/// see DESIGN.md D3).
std::uint64_t congest_budget_bits(std::uint32_t num_nodes);

/// Builds the program for one node.  It receives only the node id; all
/// topology knowledge must come from NodeContext.
using ProgramFactory = std::function<std::unique_ptr<NodeProgram>(NodeId)>;

/// A simulated network over a fixed connected graph.
class Network {
 public:
  Network(const Graph& graph, NetworkConfig config);
  ~Network();

  /// Registers the undirected edges whose traffic counts toward
  /// RunMetrics::cut_bits.  Must be called before run().
  void register_cut(const std::vector<Edge>& cut_edges);

  /// Runs programs until every node reports done() and no message is in
  /// flight.  Throws CongestViolationError on a CONGEST violation,
  /// RoundLimitError when max_rounds is exceeded, and StallError when the
  /// stall watchdog fires (all derive from InvariantError).
  RunMetrics run(const ProgramFactory& factory);

  /// Same, over caller-owned programs (programs[v] runs on node v); the
  /// caller can inspect per-node results afterwards — including partial
  /// state after a throw, which is what the watchdog runner
  /// (core/runner.hpp) harvests.
  RunMetrics run(std::vector<std::unique_ptr<NodeProgram>>& programs);

  const Graph& graph() const { return *graph_; }

  /// Metrics of the most recent run() — including the partially filled
  /// counters of a run that threw (a failed run's fault and traffic
  /// totals are exactly what the post-mortem wants).
  const RunMetrics& last_metrics() const { return metrics_; }

  /// Payload-arena heap allocations performed by the most recent run()
  /// of the zero-allocation engine (0 for the legacy engine) — flat
  /// after warm-up; bench_simulator reports it.
  std::uint64_t arena_block_allocations() const {
    return arena_block_allocations_;
  }

  // --- checkpoint / restore (snapshot/snapshot.hpp) --------------------
  //
  // The snapshot of a run captures, at a round boundary, everything the
  // next round depends on: every program's state (via Snapshottable),
  // the pending mailboxes and delay-fault parking buffers (arena views
  // materialized into owning bytes), the accumulated RunMetrics, the
  // stall-watchdog counter, and the round number — plus fingerprints of
  // the graph, the CONGEST budget, and the fault plan so a snapshot can
  // only be resumed against the run it came from.  Resuming reproduces
  // the uninterrupted run bit for bit: identical messages, metrics,
  // traces, and outputs, for any `threads` value and either engine.

  /// Serializes the state captured when the last run() suspended
  /// (halt_at_round).  Throws SnapshotError when no suspended state
  /// exists or the stream fails.
  void save_snapshot(std::ostream& out) const;

  /// Parses and validates a snapshot and stages it; the next run()
  /// resumes from it instead of round 0 (the caller still constructs the
  /// programs with their original configuration — load_snapshot restores
  /// their state).  Throws SnapshotError on corruption or when the
  /// snapshot does not match this network's graph/budget/fault plan.
  void load_snapshot(std::istream& in);

  /// True when the last run() returned because of halt_at_round (its
  /// metrics are partial and save_snapshot() is available).
  bool suspended() const { return suspended_payload_ != nullptr; }

  /// The boundary round the last run() resumed from, if it resumed.
  std::optional<std::uint64_t> resumed_from_round() const {
    return resumed_from_round_;
  }

  /// Checkpoint files written by the last run(), oldest first (pruned
  /// ones included — these are the paths as written).
  const std::vector<std::string>& checkpoints_written() const {
    return checkpoints_written_;
  }

 private:
  struct ResumeState;

  RunMetrics run_engine(std::vector<std::unique_ptr<NodeProgram>>& programs);
  RunMetrics run_frontier(std::vector<std::unique_ptr<NodeProgram>>& programs);
  RunMetrics run_legacy(std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Serializes the complete engine state at the top-of-round boundary.
  BitWriter encode_snapshot(
      std::uint64_t round, std::uint64_t stall_rounds,
      const std::vector<std::vector<InboundMessage>>& mailboxes,
      const std::vector<std::vector<InboundMessage>>& delayed,
      const std::vector<std::unique_ptr<NodeProgram>>& programs) const;

  /// The checkpoint/halt hook shared by both engines.  Returns true when
  /// the run must suspend now (halt_at_round reached).
  bool checkpoint_or_halt(
      std::uint64_t round, std::uint64_t start_round,
      std::uint64_t stall_rounds,
      const std::vector<std::vector<InboundMessage>>& mailboxes,
      const std::vector<std::vector<InboundMessage>>& delayed,
      const std::vector<std::unique_ptr<NodeProgram>>& programs);

  /// Applies a staged ResumeState: restores metrics/messages/programs and
  /// returns the round to restart from (0 when nothing is staged).
  std::uint64_t apply_pending_resume(
      std::vector<std::vector<InboundMessage>>& mailboxes,
      std::vector<std::vector<InboundMessage>>& delayed,
      std::vector<std::unique_ptr<NodeProgram>>& programs,
      std::uint64_t& stall_rounds);

  const Graph* graph_;
  NetworkConfig config_;
  /// Cut membership per directed edge, indexed by CSR adjacency position
  /// (graph.adjacency_offset(u) + slot) — a flat bitmap probe on the hot
  /// path instead of a hash-set lookup.
  std::vector<std::uint8_t> cut_flags_;
  bool has_cut_ = false;
  RunMetrics metrics_;
  std::uint64_t arena_block_allocations_ = 0;
  /// Snapshot staged by load_snapshot(), consumed by the next run().
  std::unique_ptr<ResumeState> pending_resume_;
  /// Payload captured when halt_at_round suspended the last run().
  std::unique_ptr<BitWriter> suspended_payload_;
  std::optional<std::uint64_t> resumed_from_round_;
  std::vector<std::string> checkpoints_written_;
};

}  // namespace congestbc
