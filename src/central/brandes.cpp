#include "central/brandes.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {

namespace {

/// Shared single-source BFS state for the Brandes variants.
template <typename Sigma>
struct SsspDag {
  std::vector<std::uint32_t> dist;
  std::vector<Sigma> sigma;
  std::vector<std::vector<NodeId>> predecessors;
  std::vector<NodeId> order;  // nodes in non-decreasing distance from s
};

template <typename Sigma>
SsspDag<Sigma> build_dag(const Graph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  SsspDag<Sigma> dag;
  dag.dist.assign(n, kUnreachable);
  dag.sigma.assign(n, Sigma{});
  dag.predecessors.assign(n, {});
  dag.order.reserve(n);

  dag.dist[source] = 0;
  dag.sigma[source] = Sigma(1);
  std::queue<NodeId> queue;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    dag.order.push_back(v);
    for (const NodeId w : g.neighbors(v)) {
      if (dag.dist[w] == kUnreachable) {
        dag.dist[w] = dag.dist[v] + 1;
        queue.push(w);
      }
      if (dag.dist[w] == dag.dist[v] + 1) {
        dag.sigma[w] += dag.sigma[v];
        dag.predecessors[w].push_back(v);
      }
    }
  }
  return dag;
}

/// One source's dependency accumulation (Algorithm 1 lines 20-29) into bc.
template <typename Sigma, typename Acc>
void accumulate_source(const Graph& g, NodeId source, std::vector<Acc>& bc) {
  const auto dag = build_dag<Sigma>(g, source);
  CBC_EXPECTS(dag.order.size() == g.num_nodes(), "graph must be connected");
  std::vector<Acc> delta(g.num_nodes(), Acc{0});
  for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
    const NodeId w = *it;
    for (const NodeId v : dag.predecessors[w]) {
      Acc ratio;
      if constexpr (std::is_same_v<Sigma, BigUint>) {
        // sigma may exceed double range; form the ratio from frexp pairs.
        const auto [yv, ev] = dag.sigma[v].frexp();
        const auto [yw, ew] = dag.sigma[w].frexp();
        ratio = std::ldexp(static_cast<Acc>(yv) / static_cast<Acc>(yw),
                           static_cast<int>(ev - ew));
      } else {
        ratio = static_cast<Acc>(dag.sigma[v]) / static_cast<Acc>(dag.sigma[w]);
      }
      delta[v] += ratio * (Acc{1} + delta[w]);
    }
    if (w != source) {
      bc[w] += delta[w];
    }
  }
}

}  // namespace

std::vector<double> brandes_bc(const Graph& g, const BcOptions& options) {
  CBC_EXPECTS(g.num_nodes() >= 1, "empty graph");
  std::vector<double> bc(g.num_nodes(), 0.0);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    accumulate_source<double, double>(g, s, bc);
  }
  if (options.halve) {
    for (auto& value : bc) {
      value /= 2.0;
    }
  }
  return bc;
}

std::vector<long double> brandes_bc_exact(const Graph& g,
                                          const BcOptions& options) {
  CBC_EXPECTS(g.num_nodes() >= 1, "empty graph");
  std::vector<long double> bc(g.num_nodes(), 0.0L);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    accumulate_source<BigUint, long double>(g, s, bc);
  }
  if (options.halve) {
    for (auto& value : bc) {
      value /= 2.0L;
    }
  }
  return bc;
}

std::vector<BigRational> brandes_bc_rational(const Graph& g,
                                             const BcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  std::vector<BigRational> bc(n);
  for (NodeId s = 0; s < n; ++s) {
    const auto dag = build_dag<BigUint>(g, s);
    CBC_EXPECTS(dag.order.size() == n, "graph must be connected");
    std::vector<BigRational> delta(n);
    for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
      const NodeId w = *it;
      for (const NodeId v : dag.predecessors[w]) {
        // delta[v] += sigma_v / sigma_w * (1 + delta[w])
        BigRational term(dag.sigma[v], dag.sigma[w]);
        term *= BigRational(1) + delta[w];
        delta[v] += term;
      }
      if (w != s) {
        bc[w] += delta[w];
      }
    }
  }
  if (options.halve) {
    const BigRational half(BigUint(1), BigUint(2));
    for (auto& value : bc) {
      value *= half;
    }
  }
  return bc;
}

std::vector<BigUint> count_shortest_paths(const Graph& g, NodeId source) {
  return build_dag<BigUint>(g, source).sigma;
}

std::vector<std::vector<NodeId>> shortest_path_predecessors(const Graph& g,
                                                            NodeId source) {
  return build_dag<BigUint>(g, source).predecessors;
}

std::vector<double> naive_bc(const Graph& g, const BcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  // All-pairs distances and path counts, one BFS per source.
  std::vector<std::vector<std::uint32_t>> dist(n);
  std::vector<std::vector<long double>> sigma(n);
  for (NodeId s = 0; s < n; ++s) {
    const auto dag = build_dag<long double>(g, s);
    CBC_EXPECTS(dag.order.size() == n, "graph must be connected");
    dist[s] = dag.dist;
    sigma[s] = dag.sigma;
  }
  std::vector<double> bc(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) {
        continue;
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v == s || v == t) {
          continue;
        }
        // sigma_st(v) = sigma_sv * sigma_vt when v lies on a shortest path.
        if (dist[s][v] + dist[v][t] == dist[s][t]) {
          bc[v] += static_cast<double>(sigma[s][v] * sigma[v][t] / sigma[s][t]);
        }
      }
    }
  }
  if (options.halve) {
    for (auto& value : bc) {
      value /= 2.0;
    }
  }
  return bc;
}

std::vector<double> sampled_bc(const Graph& g, std::size_t samples, Rng& rng,
                               const BcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  CBC_EXPECTS(samples >= 1 && samples <= n, "sample count out of range");
  const auto sources = rng.sample_without_replacement(n, samples);
  std::vector<double> bc(n, 0.0);
  for (const auto s : sources) {
    accumulate_source<double, double>(g, static_cast<NodeId>(s), bc);
  }
  const double scale = static_cast<double>(n) / static_cast<double>(samples) /
                       (options.halve ? 2.0 : 1.0);
  for (auto& value : bc) {
    value *= scale;
  }
  return bc;
}

}  // namespace congestbc
