#include "central/centralities.hpp"

#include <queue>

#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {

std::vector<double> closeness_centrality(const Graph& g) {
  CBC_EXPECTS(g.num_nodes() >= 2, "closeness needs >= 2 nodes");
  const auto sums = distance_sums(g);
  std::vector<double> result(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result[v] = 1.0 / static_cast<double>(sums[v]);
  }
  return result;
}

std::vector<double> graph_centrality(const Graph& g) {
  CBC_EXPECTS(g.num_nodes() >= 2, "graph centrality needs >= 2 nodes");
  const auto ecc = eccentricities(g);
  std::vector<double> result(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result[v] = 1.0 / static_cast<double>(ecc[v]);
  }
  return result;
}

std::vector<long double> stress_centrality(const Graph& g,
                                           const BcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  std::vector<long double> stress(n, 0.0L);
  for (NodeId s = 0; s < n; ++s) {
    // BFS DAG from s with long-double path counts.
    std::vector<std::uint32_t> dist(n, kUnreachable);
    std::vector<long double> sigma(n, 0.0L);
    std::vector<std::vector<NodeId>> preds(n);
    std::vector<NodeId> order;
    order.reserve(n);
    dist[s] = 0;
    sigma[s] = 1.0L;
    std::queue<NodeId> queue;
    queue.push(s);
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      order.push_back(v);
      for (const NodeId w : g.neighbors(v)) {
        if (dist[w] == kUnreachable) {
          dist[w] = dist[v] + 1;
          queue.push(w);
        }
        if (dist[w] == dist[v] + 1) {
          sigma[w] += sigma[v];
          preds[w].push_back(v);
        }
      }
    }
    CBC_EXPECTS(order.size() == n, "graph must be connected");
    // lambda_s(v) = sum over successors w of (1 + lambda_s(w)); then the
    // stress dependency of s on v is sigma_sv * lambda_s(v).
    std::vector<long double> lambda(n, 0.0L);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (const NodeId v : preds[w]) {
        lambda[v] += 1.0L + lambda[w];
      }
      if (w != s) {
        stress[w] += sigma[w] * lambda[w];
      }
    }
  }
  if (options.halve) {
    for (auto& value : stress) {
      value /= 2.0L;
    }
  }
  return stress;
}

}  // namespace congestbc
