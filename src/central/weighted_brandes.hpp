// Centralized weighted betweenness centrality (Brandes 2001, Dijkstra
// variant) — the ground truth for the weighted-graph extension.
#pragma once

#include <vector>

#include "central/brandes.hpp"
#include "graph/weighted.hpp"

namespace congestbc {

/// Brandes' algorithm on positive-integer-weighted graphs: Dijkstra per
/// source, dependency accumulation in reverse distance order.
/// Precondition: connected.
std::vector<double> weighted_brandes_bc(const WeightedGraph& g,
                                        const BcOptions& options = {});

/// Weighted closeness: 1 / sum of Dijkstra distances.  Precondition:
/// connected, N >= 2.
std::vector<double> weighted_closeness(const WeightedGraph& g);

/// Weighted diameter (max pairwise Dijkstra distance).
std::uint64_t weighted_diameter(const WeightedGraph& g);

/// Weighted stress centrality: sum over pairs of the number of weighted
/// shortest paths through v (same lambda recursion as the unweighted
/// case, on the Dijkstra DAG).
std::vector<long double> weighted_stress(const WeightedGraph& g,
                                         const BcOptions& options = {});

}  // namespace congestbc
