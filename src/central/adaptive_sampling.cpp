#include "central/adaptive_sampling.hpp"

#include <queue>

#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {

namespace {

/// delta_s(target): one Brandes dependency accumulation, returning only
/// the target's value.
double dependency_on(const Graph& g, NodeId source, NodeId target) {
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::vector<double> sigma(n, 0.0);
  std::vector<std::vector<NodeId>> preds(n);
  std::vector<NodeId> order;
  order.reserve(n);
  dist[source] = 0;
  sigma[source] = 1.0;
  std::queue<NodeId> queue;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    order.push_back(v);
    for (const NodeId w : g.neighbors(v)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
      if (dist[w] == dist[v] + 1) {
        sigma[w] += sigma[v];
        preds[w].push_back(v);
      }
    }
  }
  CBC_EXPECTS(order.size() == n, "graph must be connected");
  std::vector<double> delta(n, 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId w = *it;
    for (const NodeId v : preds[w]) {
      delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
    }
  }
  return target == source ? 0.0 : delta[target];
}

}  // namespace

AdaptiveBcEstimate adaptive_sampled_bc(const Graph& g, NodeId target,
                                       double alpha, Rng& rng,
                                       const BcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(target < n, "target out of range");
  CBC_EXPECTS(alpha > 0.0, "alpha must be positive");
  // Random source order, without replacement.
  std::vector<NodeId> sources(n);
  for (NodeId v = 0; v < n; ++v) {
    sources[v] = v;
  }
  rng.shuffle(sources);

  AdaptiveBcEstimate result;
  double sum = 0.0;
  const double threshold = alpha * static_cast<double>(n);
  for (const NodeId s : sources) {
    sum += dependency_on(g, s, target);
    ++result.samples;
    if (sum >= threshold && result.samples < n) {
      result.threshold_hit = true;
      break;
    }
  }
  const double scale = result.threshold_hit
                           ? static_cast<double>(n) /
                                 static_cast<double>(result.samples)
                           : 1.0;
  result.betweenness = sum * scale / (options.halve ? 2.0 : 1.0);
  return result;
}

}  // namespace congestbc
