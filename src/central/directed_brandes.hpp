// Centralized directed betweenness baseline — the reference checker for
// the portfolio's `directed` backend (Pontecorvi–Ramachandran,
// arXiv:1805.08124, specializes to exactly Brandes' accumulation when
// run on an unweighted digraph: forward BFS over out-arcs, dependency
// accumulation delta(v) = sum over successors w on shortest paths of
// (sigma_v / sigma_w) * (1 + delta(w)), summed over ordered pairs with
// no halving).
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace congestbc {

/// Directed Brandes with double accumulators.  Unreachable pairs
/// contribute zero; the digraph need not be strongly connected.
/// Endpoints are excluded, as in the undirected convention.
std::vector<double> directed_brandes_bc(const Digraph& g);

/// Number of shortest directed paths from `source` to every node, in
/// doubles (exact for counts below 2^53).  Unreachable nodes report 0.
std::vector<double> directed_path_counts(const Digraph& g, NodeId source);

/// BFS distance from `source` along out-arcs; ~0u for unreachable.
std::vector<std::uint32_t> directed_distances(const Digraph& g, NodeId source);

}  // namespace congestbc
