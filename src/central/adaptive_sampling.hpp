// Adaptive-sampling approximation of a single node's betweenness
// centrality — Bader, Kintali, Madduri, Mihail (WAW 2007), cited by the
// paper's related work (Section II, [13]).
//
// Idea: sample sources one at a time, accumulating the dependency
// delta_s(v) of each sample on the target node v; stop as soon as the
// accumulated sum exceeds alpha * n (high-centrality nodes trip the
// threshold after very few samples).  Estimate: n * sum / samples.
#pragma once

#include <cstddef>

#include "central/brandes.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// Outcome of one adaptive estimation.
struct AdaptiveBcEstimate {
  double betweenness = 0.0;    ///< estimated C_B(v) (halved convention opt.)
  std::size_t samples = 0;     ///< sources actually expanded
  bool threshold_hit = false;  ///< false = exhausted all n sources (exact)
};

/// Estimates C_B(target).  `alpha` is the stopping constant (the paper's
/// analysis suggests alpha >= 2 for high-BC nodes); sampling is without
/// replacement, so after n samples the estimate is exact.
AdaptiveBcEstimate adaptive_sampled_bc(const Graph& g, NodeId target,
                                       double alpha, Rng& rng,
                                       const BcOptions& options = {});

}  // namespace congestbc
