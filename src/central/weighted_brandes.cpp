#include "central/weighted_brandes.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/assert.hpp"

namespace congestbc {

namespace {

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

struct WeightedDag {
  std::vector<std::uint64_t> dist;
  std::vector<long double> sigma;
  std::vector<std::vector<NodeId>> preds;
  std::vector<NodeId> order;  // non-decreasing distance
};

WeightedDag weighted_sssp(const WeightedGraph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> adj(n);
  for (const auto& e : g.edges()) {
    adj[e.u].emplace_back(e.v, e.weight);
    adj[e.v].emplace_back(e.u, e.weight);
  }
  WeightedDag dag;
  dag.dist.assign(n, kInf);
  dag.sigma.assign(n, 0.0L);
  dag.preds.assign(n, {});
  using Item = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dag.dist[source] = 0;
  dag.sigma[source] = 1.0L;
  heap.emplace(0, source);
  std::vector<bool> settled(n, false);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) {
      continue;
    }
    settled[v] = true;
    dag.order.push_back(v);
    for (const auto& [w, weight] : adj[v]) {
      const std::uint64_t candidate = d + weight;
      if (candidate < dag.dist[w]) {
        dag.dist[w] = candidate;
        dag.sigma[w] = dag.sigma[v];
        dag.preds[w] = {v};
        heap.emplace(candidate, w);
      } else if (candidate == dag.dist[w] && !settled[w]) {
        dag.sigma[w] += dag.sigma[v];
        dag.preds[w].push_back(v);
      }
    }
  }
  return dag;
}

}  // namespace

std::vector<double> weighted_brandes_bc(const WeightedGraph& g,
                                        const BcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  std::vector<double> bc(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    const auto dag = weighted_sssp(g, s);
    CBC_EXPECTS(dag.order.size() == n, "graph must be connected");
    std::vector<double> delta(n, 0.0);
    for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
      const NodeId w = *it;
      for (const NodeId v : dag.preds[w]) {
        delta[v] += static_cast<double>(dag.sigma[v] / dag.sigma[w]) *
                    (1.0 + delta[w]);
      }
      if (w != s) {
        bc[w] += delta[w];
      }
    }
  }
  if (options.halve) {
    for (auto& value : bc) {
      value /= 2.0;
    }
  }
  return bc;
}

std::vector<double> weighted_closeness(const WeightedGraph& g) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 2, "closeness needs >= 2 nodes");
  std::vector<double> result(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto dist = dijkstra_distances(g, v);
    std::uint64_t total = 0;
    for (const auto d : dist) {
      CBC_EXPECTS(d != kInf, "graph must be connected");
      total += d;
    }
    result[v] = 1.0 / static_cast<double>(total);
  }
  return result;
}

std::vector<long double> weighted_stress(const WeightedGraph& g,
                                         const BcOptions& options) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  std::vector<long double> stress(n, 0.0L);
  for (NodeId s = 0; s < n; ++s) {
    const auto dag = weighted_sssp(g, s);
    CBC_EXPECTS(dag.order.size() == n, "graph must be connected");
    std::vector<long double> lambda(n, 0.0L);
    for (auto it = dag.order.rbegin(); it != dag.order.rend(); ++it) {
      const NodeId w = *it;
      for (const NodeId v : dag.preds[w]) {
        lambda[v] += 1.0L + lambda[w];
      }
      if (w != s) {
        stress[w] += dag.sigma[w] * lambda[w];
      }
    }
  }
  if (options.halve) {
    for (auto& value : stress) {
      value /= 2.0L;
    }
  }
  return stress;
}

std::uint64_t weighted_diameter(const WeightedGraph& g) {
  CBC_EXPECTS(g.num_nodes() >= 1, "empty graph");
  std::uint64_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto dist = dijkstra_distances(g, v);
    for (const auto d : dist) {
      CBC_EXPECTS(d != kInf, "graph must be connected");
      best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace congestbc
