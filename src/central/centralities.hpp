// Centralized reference implementations of the other centrality indices
// the paper defines in Section I (Eqs. (1)-(3)): closeness, graph
// (eccentricity-based) and stress centrality.  The distributed pipeline in
// algo/centrality_suite computes all of them in the same O(N) rounds; these
// are the ground-truth counterparts.
#pragma once

#include <vector>

#include "central/brandes.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// Eq. (1): C_C(v) = 1 / sum_t d(v, t).  Precondition: connected, N >= 2.
std::vector<double> closeness_centrality(const Graph& g);

/// Eq. (2): C_G(v) = 1 / max_t d(v, t).  Precondition: connected, N >= 2.
std::vector<double> graph_centrality(const Graph& g);

/// Eq. (3): C_S(v) = sum_{s!=t!=v} sigma_st(v); computed with the
/// Brandes-style recursion lambda_s(v) = sum_{w: v in P_s(w)} (1 +
/// lambda_s(w)) and C_S(v) = sum_s sigma_sv * lambda_s(v).  Long-double
/// accumulators (counts can be exponential).  The `halve` option matches
/// the undirected convention used for betweenness.
std::vector<long double> stress_centrality(const Graph& g,
                                           const BcOptions& options = {});

}  // namespace congestbc
