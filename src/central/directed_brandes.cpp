#include "central/directed_brandes.hpp"

#include <queue>

#include "common/assert.hpp"

namespace congestbc {

namespace {

constexpr std::uint32_t kUnreached = ~std::uint32_t{0};

/// One forward BFS from `source`: distances, path counts, and the nodes
/// visited in non-decreasing distance order (the accumulation stack).
struct ForwardPass {
  std::vector<std::uint32_t> dist;
  std::vector<double> sigma;
  std::vector<NodeId> order;
};

ForwardPass forward_bfs(const Digraph& g, NodeId source) {
  const NodeId n = g.num_nodes();
  ForwardPass pass;
  pass.dist.assign(n, kUnreached);
  pass.sigma.assign(n, 0.0);
  pass.order.reserve(n);
  pass.dist[source] = 0;
  pass.sigma[source] = 1.0;
  std::queue<NodeId> queue;
  queue.push(source);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop();
    pass.order.push_back(v);
    for (const NodeId w : g.out_neighbors(v)) {
      if (pass.dist[w] == kUnreached) {
        pass.dist[w] = pass.dist[v] + 1;
        queue.push(w);
      }
      if (pass.dist[w] == pass.dist[v] + 1) {
        pass.sigma[w] += pass.sigma[v];
      }
    }
  }
  return pass;
}

}  // namespace

std::vector<double> directed_brandes_bc(const Digraph& g) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 1, "empty graph");
  std::vector<double> bc(n, 0.0);
  std::vector<double> delta(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    const ForwardPass pass = forward_bfs(g, s);
    std::fill(delta.begin(), delta.end(), 0.0);
    // Reverse non-decreasing-distance order; predecessors of w on
    // shortest paths are exactly the in-neighbors one level closer.
    for (auto it = pass.order.rbegin(); it != pass.order.rend(); ++it) {
      const NodeId w = *it;
      for (const NodeId v : g.in_neighbors(w)) {
        if (pass.dist[v] != kUnreached && pass.dist[v] + 1 == pass.dist[w]) {
          delta[v] += pass.sigma[v] / pass.sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) {
        bc[w] += delta[w];
      }
    }
  }
  return bc;
}

std::vector<double> directed_path_counts(const Digraph& g, NodeId source) {
  CBC_EXPECTS(source < g.num_nodes(), "source out of range");
  return forward_bfs(g, source).sigma;
}

std::vector<std::uint32_t> directed_distances(const Digraph& g,
                                              NodeId source) {
  CBC_EXPECTS(source < g.num_nodes(), "source out of range");
  return forward_bfs(g, source).dist;
}

}  // namespace congestbc
