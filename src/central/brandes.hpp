// Centralized betweenness-centrality baselines (paper Section IV).
//
// These are the reference implementations the distributed algorithm is
// validated against:
//   * brandes_bc       — Algorithm 1, double accumulators, O(NM);
//   * brandes_bc_exact — Algorithm 1 with exact BigUint path counts and
//                        long-double dependencies (the "ground truth" for
//                        the soft-float error experiments; sigma can exceed
//                        2^1000, which doubles cannot even represent);
//   * naive_bc         — definition-level O(N^3) computation along
//                        Eq. (4), an independent code path used to
//                        cross-check Brandes itself;
//   * sampled_bc       — the Brandes–Pich source-sampling estimator
//                        referenced in Section II.
#pragma once

#include <vector>

#include "bignum/big_rational.hpp"
#include "bignum/big_uint.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace congestbc {

/// Output convention.  The paper's Eq. (10) sums ordered-pair dependencies
/// and its Figure-1 example halves the sum for the undirected graph
/// (C_B(v2) = 7/2); `halve = true` reproduces that convention.
struct BcOptions {
  bool halve = true;
};

/// Brandes' algorithm with double accumulators.  Precondition: connected.
std::vector<double> brandes_bc(const Graph& g, const BcOptions& options = {});

/// Brandes' algorithm with exact arbitrary-precision path counts; the
/// dependency accumulation uses long double (64-bit mantissa, 15-bit
/// exponent — exact enough to serve as ground truth for soft-float error
/// measurements on graphs up to thousands of nodes).
std::vector<long double> brandes_bc_exact(const Graph& g,
                                          const BcOptions& options = {});

/// Brandes' algorithm in exact rational arithmetic: no floating point
/// anywhere, so results like the paper's C_B(v2) = 7/2 are pinned as
/// literal fractions.  Denominators grow fast — validation-scale graphs
/// only (N <~ 32).
std::vector<BigRational> brandes_bc_rational(const Graph& g,
                                             const BcOptions& options = {});

/// Exact number of shortest paths from `source` to every node (Eq. (6)).
std::vector<BigUint> count_shortest_paths(const Graph& g, NodeId source);

/// Predecessor sets P_source(v) along shortest paths (Eq. (5)).
std::vector<std::vector<NodeId>> shortest_path_predecessors(const Graph& g,
                                                            NodeId source);

/// Definition-level betweenness: for every pair (s, t) and node v, add
/// sigma_st(v)/sigma_st.  O(N^3)-ish; for validation on small graphs only.
std::vector<double> naive_bc(const Graph& g, const BcOptions& options = {});

/// Brandes–Pich estimator: run the dependency accumulation from `samples`
/// uniformly chosen sources and scale by N/samples.
std::vector<double> sampled_bc(const Graph& g, std::size_t samples, Rng& rng,
                               const BcOptions& options = {});

}  // namespace congestbc
