// Random-walk (current-flow) betweenness centrality — Newman 2005,
// referenced by the paper's footnote 1 as explicit future work ("we did
// not consider the random-walk based betweenness centrality ...
// distributively computing this centrality will be our future work").
//
// This centralized implementation provides the reference semantics for
// that future distributed work: the graph is treated as a resistor
// network with unit conductances; for each source/sink pair (s, t) a unit
// current flows and node v's throughput is half the absolute current over
// its incident edges.  Summing over unordered pairs (excluding pairs
// containing v) gives the centrality.  Cost: one dense (N-1)x(N-1)
// Laplacian inversion, O(N^3), plus O(N^2 * deg) accumulation — intended
// for validation-scale graphs.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace congestbc {

/// Current-flow betweenness, summed over unordered pairs s < t with
/// v not in {s, t} (no normalization — divide by (N-1)(N-2)/2 for
/// Newman's normalized variant).  Precondition: connected, N >= 3.
std::vector<double> current_flow_bc(const Graph& g);

}  // namespace congestbc
