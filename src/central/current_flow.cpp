#include "central/current_flow.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "graph/properties.hpp"

namespace congestbc {

namespace {

/// Dense square matrix with row-major storage; just enough for the
/// Laplacian inversion below.
class Matrix {
 public:
  explicit Matrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * n_ + c]; }
  std::size_t size() const { return n_; }

  /// In-place Gauss–Jordan inversion with partial pivoting.  Throws
  /// InvariantError on a (numerically) singular matrix.
  Matrix inverse() const {
    Matrix a = *this;
    Matrix inv(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      inv.at(i, i) = 1.0;
    }
    for (std::size_t col = 0; col < n_; ++col) {
      // Partial pivot.
      std::size_t pivot = col;
      for (std::size_t r = col + 1; r < n_; ++r) {
        if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) {
          pivot = r;
        }
      }
      CBC_CHECK(std::abs(a.at(pivot, col)) > 1e-12,
                "singular matrix in current-flow computation");
      if (pivot != col) {
        for (std::size_t c = 0; c < n_; ++c) {
          std::swap(a.at(pivot, c), a.at(col, c));
          std::swap(inv.at(pivot, c), inv.at(col, c));
        }
      }
      const double scale = 1.0 / a.at(col, col);
      for (std::size_t c = 0; c < n_; ++c) {
        a.at(col, c) *= scale;
        inv.at(col, c) *= scale;
      }
      for (std::size_t r = 0; r < n_; ++r) {
        if (r == col) {
          continue;
        }
        const double factor = a.at(r, col);
        if (factor == 0.0) {
          continue;
        }
        for (std::size_t c = 0; c < n_; ++c) {
          a.at(r, c) -= factor * a.at(col, c);
          inv.at(r, c) -= factor * inv.at(col, c);
        }
      }
    }
    return inv;
  }

 private:
  std::size_t n_;
  std::vector<double> data_;
};

}  // namespace

std::vector<double> current_flow_bc(const Graph& g) {
  const NodeId n = g.num_nodes();
  CBC_EXPECTS(n >= 3, "current-flow betweenness needs >= 3 nodes");
  CBC_EXPECTS(is_connected(g), "graph must be connected");

  // Reduced Laplacian: delete the row/column of the grounded node n-1.
  const std::size_t m = n - 1;
  Matrix laplacian(m);
  for (NodeId v = 0; v < m; ++v) {
    laplacian.at(v, v) = static_cast<double>(g.degree(v));
    for (const NodeId w : g.neighbors(v)) {
      if (w < m) {
        laplacian.at(v, w) -= 1.0;
      }
    }
  }
  const Matrix t_reduced = laplacian.inverse();

  // Potential lookup T(v, s) extended with zeros at the grounded node.
  auto potential = [&](NodeId v, NodeId s) -> double {
    if (v == n - 1 || s == n - 1) {
      return 0.0;
    }
    return t_reduced.at(v, s);
  };

  std::vector<double> bc(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = s + 1; t < n; ++t) {
      // Node potentials for unit current s -> t.
      for (NodeId v = 0; v < n; ++v) {
        if (v == s || v == t) {
          continue;
        }
        const double pv = potential(v, s) - potential(v, t);
        double throughput = 0.0;
        for (const NodeId w : g.neighbors(v)) {
          const double pw = potential(w, s) - potential(w, t);
          throughput += std::abs(pv - pw);
        }
        bc[v] += 0.5 * throughput;
      }
    }
  }
  return bc;
}

}  // namespace congestbc
