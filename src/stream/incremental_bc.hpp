// Incremental BC maintainer — the compute half of the streaming
// subsystem.
//
// IncrementalBc keeps, for a fixed ordered source set, the per-source
// dependency summaries of the last run: the source's BFS distance
// vector (its "tree touch-set" — exactly the information that decides
// whether a mutation touches the source's shortest-path DAG) and its
// betweenness/stress contribution vectors, each produced by a
// single-source run through the existing engine (options.sources =
// {s}, scale_by_sources off).
//
// On a delta batch, sources are classified clean/dirty by one exact
// rule: an op on edge (u, v) is *clean* for source s iff
// d_s(u) == d_s(v).  An equidistant edge connects two nodes on the same
// BFS level, so it lies on no shortest path from s — inserting or
// deleting it changes no distance, no path count, and no dependency;
// it is fully inert for s, which also makes the rule compose across a
// batch (inert ops cannot invalidate each other's distance tests).
// Any op with |d_s(u) - d_s(v)| >= 1 is conservatively dirty: an
// insert between adjacent levels creates new shortest paths (sigma
// changes even when no distance does), a level-crossing delete destroys
// them.  Dirty sources are re-run through the engine; clean sources
// keep their stored summaries untouched.
//
// Differential guarantee (pinned by tests/stream_test.cpp): after any
// mutation sequence, the maintained scores are BIT-IDENTICAL to a
// from-scratch IncrementalBc built at the same version.  That holds
// because (a) clean summaries are provably equal to what a re-run
// would produce, (b) the engine is bit-identical across engines and
// thread counts, and (c) assembly re-sums ALL stored summaries in the
// fixed source order after every apply — contributions are never
// spliced numerically in and out of a running total, which floating-
// point non-associativity would make order-dependent.
//
// The assembled scores follow the engine's own finalize() semantics
// (algo/bc_program.cpp) — betweenness/stress scaled by N/K, closeness
// = 1 / (scaled distance sum), graph centrality = 1 / eccentricity —
// but the cross-source summation happens in double precision here
// rather than inside the soft-float aggregation, so assembled values
// agree with a combined multi-source engine run only up to summation
// rounding.  The incremental product is therefore cached under its own
// tagged fingerprint, never interchangeably with combined-run results.
#pragma once

#include <cstdint>
#include <vector>

#include "algo/bc_pipeline.hpp"
#include "graph/graph.hpp"
#include "snapshot/fingerprint.hpp"

namespace congestbc::stream {

struct IncrementalBcConfig {
  /// Fixed ordered source set; empty = every node.  Order is part of
  /// the result identity (assembly sums in this order).
  std::vector<NodeId> sources;
  bool halve = true;
  /// Scale betweenness/stress by N/|sources| and closeness's distance
  /// sum likewise (the engine's sampled-estimator semantics).
  bool scale_by_sources = true;
  std::uint64_t max_rounds = 50'000'000;
  /// Execution-only knobs — bit-identical results across all values.
  unsigned threads = 1;
  EngineKind engine = EngineKind::kFrontier;
  bool legacy_engine = false;
};

/// What one apply() re-ran.
struct IncrementalApplyStats {
  std::uint64_t dirty_sources = 0;
  std::uint64_t clean_sources = 0;
};

/// The maintained score vectors, assembled from the per-source
/// summaries in fixed source order.
struct MaintainedScores {
  std::vector<double> betweenness;
  std::vector<double> closeness;
  std::vector<double> graph_centrality;
  std::vector<long double> stress;
  std::vector<std::uint32_t> eccentricities;  ///< max distance to any source
  std::uint32_t diameter = 0;
  std::uint64_t rounds = 0;  ///< engine rounds across the runs that built this
};

class IncrementalBc {
 public:
  /// Full build: runs every configured source on `base`.  The graph
  /// must be connected (the engine's precondition).  Throws
  /// std::invalid_argument on an out-of-range or duplicate source.
  IncrementalBc(const Graph& base, IncrementalBcConfig config);

  /// Advances the maintained state across one canonical delta batch
  /// (VersionedGraph::delta form): classifies sources against the
  /// stored distances, re-runs the dirty ones on `next` (the graph
  /// AFTER the batch, which must be connected), and re-assembles.
  IncrementalApplyStats apply(const Graph& next,
                              const std::vector<GraphDeltaOp>& delta);

  const MaintainedScores& scores() const { return scores_; }
  const IncrementalBcConfig& config() const { return config_; }
  /// The resolved source order (after the empty = all-nodes default).
  const std::vector<NodeId>& sources() const { return sources_; }

  /// True iff every op of the batch is inert for a source with this
  /// distance vector (see the classification rule above).  Exposed for
  /// the property tests.
  static bool source_is_clean(const std::vector<std::uint32_t>& dist,
                              const std::vector<GraphDeltaOp>& delta);

 private:
  struct SourceSummary {
    std::vector<std::uint32_t> dist;  // d_s(v) for every v
    std::vector<double> betweenness;  // this source's contribution
    std::vector<long double> stress;
    std::uint64_t rounds = 0;  // engine rounds of this source's last run
  };

  void run_source(const Graph& g, std::size_t index);
  void assemble();

  IncrementalBcConfig config_;
  NodeId num_nodes_;
  std::vector<NodeId> sources_;
  std::vector<SourceSummary> summaries_;  // parallel to sources_
  MaintainedScores scores_;
};

}  // namespace congestbc::stream
