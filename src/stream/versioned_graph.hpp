// Versioned mutable graph — the storage half of the streaming subsystem.
//
// A VersionedGraph holds a live adjacency (the "head") plus a
// monotonically increasing version counter and the full per-version
// delta log.  Every apply() takes a batch of edge operations, validates
// and canonicalizes it (normalize endpoints, net-effect dedup against
// the current edge set, sort), bumps the version — even for a net-empty
// batch, so a client that round-trips a no-op still observes progress —
// and chains the version fingerprint in O(|delta|) via
// chain_graph_fingerprint (src/snapshot/fingerprint.hpp):
//
//   fingerprint(0)   = graph_fingerprint(base)
//   fingerprint(v+1) = chain(fingerprint(v), canonical delta)
//
// The chained fingerprint composes with the existing cache keys: the
// serving layer addresses results by the fingerprint of the version a
// submit ran against, and invalidates exactly the entries whose
// fingerprints a mutation supersedes.
//
// The node count is fixed at construction.  That is deliberate:
// SoftFloatFormat::for_graph(N) — and with it every result bit — depends
// on N, so a node-count change would dirty every maintained source
// anyway; callers size the base graph for the node universe up front
// (graph/io.hpp read_snap_edge_list keep_all_components exists for
// exactly this).  Deletes may disconnect the graph; VersionedGraph is
// pure storage and allows it — connectivity is enforced where BC runs
// are admitted (daemon submit path), not here.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "snapshot/fingerprint.hpp"

namespace congestbc::stream {

enum class EdgeOpKind : std::uint8_t {
  kInsert = 1,
  kRemove = 2,
};

/// One wire-level edge operation.  Endpoints may arrive in either order;
/// canonicalization normalizes to u < v.
struct EdgeOp {
  EdgeOpKind kind = EdgeOpKind::kInsert;
  NodeId u = 0;
  NodeId v = 0;
};

/// What one apply() did.
struct ApplyOutcome {
  std::uint64_t version = 0;      ///< the new head version
  std::uint64_t fingerprint = 0;  ///< chained fingerprint at that version
  std::uint64_t applied = 0;      ///< ops that changed the edge set
  std::uint64_t dropped = 0;      ///< no-ops and duplicates canonicalized away
};

class VersionedGraph {
 public:
  /// Version 0 is the base graph; fingerprint(0) = graph_fingerprint(base).
  explicit VersionedGraph(Graph base);

  /// Validates, canonicalizes, and applies one batch.  Throws
  /// std::invalid_argument on an out-of-range endpoint or a self-loop —
  /// the batch is rejected whole, nothing is applied.  A batch whose
  /// every op is a no-op still bumps the version (with an empty
  /// canonical delta, so the fingerprint chain records it).
  ApplyOutcome apply(const std::vector<EdgeOp>& ops);

  std::uint64_t version() const { return version_; }
  std::uint64_t fingerprint() const { return fingerprints_.back(); }
  NodeId num_nodes() const { return num_nodes_; }
  const Graph& head() const { return head_; }

  /// Fingerprint of any historical version (0..version()).  Throws
  /// std::out_of_range beyond the head.
  std::uint64_t fingerprint_at(std::uint64_t version) const;

  /// Materializes a historical version by replaying the delta log from
  /// the base.  O(sum of batch sizes); version() returns the head
  /// without replay cost via head().
  Graph at(std::uint64_t version) const;

  /// The canonical delta batch that produced `version` (1..version()).
  const std::vector<GraphDeltaOp>& delta(std::uint64_t version) const;

  /// Canonical form of a batch against an explicit edge set: endpoints
  /// normalized, per-edge net effect (last op wins), no-ops against
  /// `current` dropped, result sorted by (u, v).  Exposed for tests and
  /// for the daemon's journal replay.  Throws std::invalid_argument on
  /// invalid endpoints.
  static std::vector<GraphDeltaOp> canonicalize(const Graph& current,
                                                const std::vector<EdgeOp>& ops);

 private:
  NodeId num_nodes_;
  Graph base_;
  Graph head_;
  std::uint64_t version_ = 0;
  std::vector<std::uint64_t> fingerprints_;        // [version]
  std::vector<std::vector<GraphDeltaOp>> deltas_;  // [version - 1]
};

/// Applies one canonical delta batch to an edge list (insert appends,
/// remove erases); shared by apply(), at(), and the daemon's spool
/// replay so all three produce the same head.
void apply_delta(std::vector<Edge>& edges, const std::vector<GraphDeltaOp>& delta);

}  // namespace congestbc::stream
