#include "stream/incremental_bc.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "graph/properties.hpp"

namespace congestbc::stream {

IncrementalBc::IncrementalBc(const Graph& base, IncrementalBcConfig config)
    : config_(std::move(config)), num_nodes_(base.num_nodes()) {
  if (config_.sources.empty()) {
    sources_.resize(num_nodes_);
    for (NodeId v = 0; v < num_nodes_; ++v) {
      sources_[v] = v;
    }
  } else {
    sources_ = config_.sources;
    std::vector<bool> seen(num_nodes_, false);
    for (const NodeId s : sources_) {
      if (s >= num_nodes_) {
        throw std::invalid_argument("source " + std::to_string(s) +
                                    " out of range");
      }
      if (seen[s]) {
        throw std::invalid_argument("duplicate source " + std::to_string(s));
      }
      seen[s] = true;
    }
  }
  summaries_.resize(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    run_source(base, i);
  }
  assemble();
}

bool IncrementalBc::source_is_clean(const std::vector<std::uint32_t>& dist,
                                    const std::vector<GraphDeltaOp>& delta) {
  for (const GraphDeltaOp& op : delta) {
    const std::uint32_t du = dist[op.u];
    const std::uint32_t dv = dist[op.v];
    if (du == kUnreachable || dv == kUnreachable || du != dv) {
      return false;
    }
  }
  return true;
}

IncrementalApplyStats IncrementalBc::apply(
    const Graph& next, const std::vector<GraphDeltaOp>& delta) {
  if (next.num_nodes() != num_nodes_) {
    throw std::invalid_argument("node count changed across a delta batch");
  }
  IncrementalApplyStats stats;
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (source_is_clean(summaries_[i].dist, delta)) {
      ++stats.clean_sources;
    } else {
      run_source(next, i);
      ++stats.dirty_sources;
    }
  }
  assemble();
  return stats;
}

void IncrementalBc::run_source(const Graph& g, std::size_t index) {
  DistributedBcOptions options;
  options.halve = config_.halve;
  std::vector<bool> mask(num_nodes_, false);
  mask[sources_[index]] = true;
  options.sources = std::move(mask);
  options.scale_by_sources = false;
  options.max_rounds = config_.max_rounds;
  options.threads = config_.threads;
  options.engine = config_.engine;
  options.legacy_engine = config_.legacy_engine;
  DistributedBcResult result = run_distributed_bc(g, options);
  SourceSummary& summary = summaries_[index];
  // With a single source, each node's "max distance to any source" IS
  // its distance from s — the engine hands back the touch-set for free.
  summary.dist = std::move(result.eccentricities);
  summary.betweenness = std::move(result.betweenness);
  summary.stress = std::move(result.stress);
  summary.rounds = result.rounds;
}

void IncrementalBc::assemble() {
  const std::size_t n = num_nodes_;
  const double source_scale =
      config_.scale_by_sources
          ? static_cast<double>(num_nodes_) /
                static_cast<double>(sources_.size())
          : 1.0;
  scores_.betweenness.assign(n, 0.0);
  scores_.stress.assign(n, 0.0L);
  scores_.closeness.assign(n, 0.0);
  scores_.graph_centrality.assign(n, 0.0);
  scores_.eccentricities.assign(n, 0);
  scores_.rounds = 0;
  std::vector<std::uint64_t> dist_sum(n, 0);
  for (const SourceSummary& summary : summaries_) {
    for (std::size_t v = 0; v < n; ++v) {
      scores_.betweenness[v] += summary.betweenness[v];
      scores_.stress[v] += summary.stress[v];
      dist_sum[v] += summary.dist[v];
      scores_.eccentricities[v] =
          std::max(scores_.eccentricities[v], summary.dist[v]);
    }
    scores_.rounds += summary.rounds;
  }
  scores_.diameter = 0;
  for (std::size_t v = 0; v < n; ++v) {
    scores_.betweenness[v] *= source_scale;
    scores_.stress[v] *= static_cast<long double>(source_scale);
    const double scaled_sum =
        static_cast<double>(dist_sum[v]) * source_scale;
    scores_.closeness[v] = scaled_sum > 0 ? 1.0 / scaled_sum : 0.0;
    scores_.graph_centrality[v] =
        scores_.eccentricities[v] > 0
            ? 1.0 / static_cast<double>(scores_.eccentricities[v])
            : 0.0;
    scores_.diameter = std::max(scores_.diameter, scores_.eccentricities[v]);
  }
}

}  // namespace congestbc::stream
