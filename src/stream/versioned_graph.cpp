#include "stream/versioned_graph.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace congestbc::stream {

VersionedGraph::VersionedGraph(Graph base)
    : num_nodes_(base.num_nodes()), base_(base), head_(std::move(base)) {
  fingerprints_.push_back(graph_fingerprint(base_));
}

std::vector<GraphDeltaOp> VersionedGraph::canonicalize(
    const Graph& current, const std::vector<EdgeOp>& ops) {
  // Net effect per normalized edge, last op wins; std::map keeps the
  // result sorted by (u, v) — the canonical order the fingerprint chain
  // and the dirty-source classifier both rely on.
  std::map<std::pair<NodeId, NodeId>, bool> net;
  for (const EdgeOp& op : ops) {
    NodeId u = op.u;
    NodeId v = op.v;
    if (u > v) {
      std::swap(u, v);
    }
    if (u == v) {
      throw std::invalid_argument("edge op is a self-loop: " +
                                  std::to_string(u));
    }
    if (v >= current.num_nodes()) {
      throw std::invalid_argument("edge op endpoint " + std::to_string(v) +
                                  " out of range (graph has " +
                                  std::to_string(current.num_nodes()) +
                                  " nodes)");
    }
    if (op.kind != EdgeOpKind::kInsert && op.kind != EdgeOpKind::kRemove) {
      throw std::invalid_argument("unknown edge op kind");
    }
    net[{u, v}] = (op.kind == EdgeOpKind::kInsert);
  }
  std::vector<GraphDeltaOp> canonical;
  canonical.reserve(net.size());
  for (const auto& [edge, insert] : net) {
    // Drop no-ops: inserting a present edge, removing an absent one.
    if (insert == current.has_edge(edge.first, edge.second)) {
      continue;
    }
    canonical.push_back({insert, edge.first, edge.second});
  }
  return canonical;
}

void apply_delta(std::vector<Edge>& edges,
                 const std::vector<GraphDeltaOp>& delta) {
  for (const GraphDeltaOp& op : delta) {
    const Edge edge{op.u, op.v};
    if (op.insert) {
      edges.push_back(edge);
    } else {
      std::erase(edges, edge);
    }
  }
}

ApplyOutcome VersionedGraph::apply(const std::vector<EdgeOp>& ops) {
  std::vector<GraphDeltaOp> canonical = canonicalize(head_, ops);
  std::vector<Edge> edges = head_.edges();
  apply_delta(edges, canonical);
  Graph next(num_nodes_, std::move(edges));

  ++version_;
  fingerprints_.push_back(
      chain_graph_fingerprint(fingerprints_.back(), canonical));
  ApplyOutcome outcome;
  outcome.version = version_;
  outcome.fingerprint = fingerprints_.back();
  outcome.applied = canonical.size();
  outcome.dropped = ops.size() - canonical.size();
  deltas_.push_back(std::move(canonical));
  head_ = std::move(next);
  return outcome;
}

std::uint64_t VersionedGraph::fingerprint_at(std::uint64_t version) const {
  if (version > version_) {
    throw std::out_of_range("version " + std::to_string(version) +
                            " beyond head " + std::to_string(version_));
  }
  return fingerprints_[version];
}

Graph VersionedGraph::at(std::uint64_t version) const {
  if (version > version_) {
    throw std::out_of_range("version " + std::to_string(version) +
                            " beyond head " + std::to_string(version_));
  }
  std::vector<Edge> edges = base_.edges();
  for (std::uint64_t v = 0; v < version; ++v) {
    apply_delta(edges, deltas_[v]);
  }
  return Graph(num_nodes_, std::move(edges));
}

const std::vector<GraphDeltaOp>& VersionedGraph::delta(
    std::uint64_t version) const {
  if (version == 0 || version > version_) {
    throw std::out_of_range("no delta batch for version " +
                            std::to_string(version));
  }
  return deltas_[version - 1];
}

}  // namespace congestbc::stream
