#include "bignum/big_uint.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/bit_io.hpp"
#include "common/int128.hpp"

namespace congestbc {

namespace {
// Portable 64x64 -> 128 multiply.
void mul_u64(std::uint64_t a, std::uint64_t b, std::uint64_t& lo,
             std::uint64_t& hi) {
  const uint128_t p = static_cast<uint128_t>(a) * static_cast<uint128_t>(b);
  lo = static_cast<std::uint64_t>(p);
  hi = static_cast<std::uint64_t>(p >> 64);
}
}  // namespace

BigUint::BigUint(std::uint64_t value) {
  if (value != 0) {
    limbs_.push_back(value);
  }
}

BigUint BigUint::from_decimal(const std::string& text) {
  CBC_EXPECTS(!text.empty(), "empty decimal string");
  BigUint result;
  for (const char ch : text) {
    CBC_EXPECTS(ch >= '0' && ch <= '9', "non-digit in decimal string");
    // result = result * 10 + digit
    BigUint ten_times = result;
    ten_times <<= 3;           // *8
    result <<= 1;              // *2
    result += ten_times;       // *10
    result += static_cast<std::uint64_t>(ch - '0');
  }
  return result;
}

BigUint BigUint::pow2(std::size_t exponent) {
  BigUint result(1);
  result <<= exponent;
  return result;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) {
    return 0;
  }
  return (limbs_.size() - 1) * 64 + bit_width_u64(limbs_.back());
}

bool BigUint::bit(std::size_t index) const {
  const std::size_t limb = index / 64;
  if (limb >= limbs_.size()) {
    return false;
  }
  return ((limbs_[limb] >> (index % 64)) & 1u) != 0;
}

BigUint& BigUint::operator+=(const BigUint& other) {
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const std::uint64_t before = limbs_[i];
    limbs_[i] = before + rhs;
    std::uint64_t new_carry = limbs_[i] < before ? 1u : 0u;
    limbs_[i] += carry;
    if (limbs_[i] < carry) {
      new_carry = 1;
    }
    carry = new_carry;
  }
  if (carry != 0) {
    limbs_.push_back(carry);
  }
  return *this;
}

BigUint& BigUint::operator+=(std::uint64_t other) {
  return *this += BigUint(other);
}

BigUint& BigUint::operator-=(const BigUint& other) {
  CBC_EXPECTS(*this >= other, "BigUint subtraction would underflow");
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const std::uint64_t before = limbs_[i];
    limbs_[i] = before - rhs;
    std::uint64_t new_borrow = before < rhs ? 1u : 0u;
    const std::uint64_t mid = limbs_[i];
    limbs_[i] -= borrow;
    if (mid < borrow) {
      new_borrow = 1;
    }
    borrow = new_borrow;
  }
  CBC_CHECK(borrow == 0, "subtraction underflow despite comparison");
  trim();
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& other) {
  if (is_zero() || other.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint64_t> result(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      std::uint64_t lo;
      std::uint64_t hi;
      mul_u64(limbs_[i], other.limbs_[j], lo, hi);
      // result[i+j] += lo + carry, propagating into hi.
      std::uint64_t sum = result[i + j] + lo;
      if (sum < lo) {
        ++hi;
      }
      const std::uint64_t sum2 = sum + carry;
      if (sum2 < carry) {
        ++hi;
      }
      result[i + j] = sum2;
      carry = hi;
    }
    std::size_t k = i + other.limbs_.size();
    while (carry != 0) {
      const std::uint64_t sum = result[k] + carry;
      carry = sum < carry ? 1u : 0u;
      result[k] = sum;
      ++k;
    }
  }
  limbs_ = std::move(result);
  trim();
  return *this;
}

BigUint& BigUint::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) {
    return *this;
  }
  const std::size_t limb_shift = bits / 64;
  const unsigned bit_shift = static_cast<unsigned>(bits % 64);
  std::vector<std::uint64_t> result(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    result[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0) {
      result[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  limbs_ = std::move(result);
  trim();
  return *this;
}

BigUint& BigUint::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) {
    return *this;
  }
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  const unsigned bit_shift = static_cast<unsigned>(bits % 64);
  std::vector<std::uint64_t> result(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < result.size(); ++i) {
    result[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      result[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  limbs_ = std::move(result);
  trim();
  return *this;
}

int BigUint::compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i > 0; --i) {
    if (limbs_[i - 1] != other.limbs_[i - 1]) {
      return limbs_[i - 1] < other.limbs_[i - 1] ? -1 : 1;
    }
  }
  return 0;
}

std::uint64_t BigUint::div_mod_small(std::uint64_t divisor) {
  CBC_EXPECTS(divisor != 0, "division by zero");
  uint128_t remainder = 0;
  for (std::size_t i = limbs_.size(); i > 0; --i) {
    const uint128_t cur = (remainder << 64) | limbs_[i - 1];
    limbs_[i - 1] = static_cast<std::uint64_t>(cur / divisor);
    remainder = cur % divisor;
  }
  trim();
  return static_cast<std::uint64_t>(remainder);
}

double BigUint::to_double() const {
  const auto [mantissa, exponent] = frexp();
  return std::ldexp(mantissa, static_cast<int>(exponent));
}

std::pair<double, std::int64_t> BigUint::frexp() const {
  if (is_zero()) {
    return {0.0, 0};
  }
  const std::size_t bits = bit_length();
  // Extract the top (up to) 64 bits.
  std::uint64_t top = 0;
  if (bits <= 64) {
    top = limbs_[0];
  } else {
    const BigUint shifted = *this >> (bits - 64);
    top = shifted.limbs_[0];
  }
  // top has its highest bit at position 63 (when bits >= 64) or bits-1.
  const unsigned top_bits = bits >= 64 ? 64u : static_cast<unsigned>(bits);
  const double y = static_cast<double>(top) /
                   std::ldexp(1.0, static_cast<int>(top_bits));
  return {y, static_cast<std::int64_t>(bits)};
}

std::uint64_t BigUint::to_u64() const {
  CBC_EXPECTS(fits_u64(), "value does not fit in 64 bits");
  return limbs_.empty() ? 0 : limbs_[0];
}

std::string BigUint::to_decimal() const {
  if (is_zero()) {
    return "0";
  }
  BigUint copy = *this;
  std::string digits;
  while (!copy.is_zero()) {
    const std::uint64_t chunk = copy.div_mod_small(10'000'000'000'000'000'000ull);
    if (copy.is_zero()) {
      digits = std::to_string(chunk) + digits;
    } else {
      std::string part = std::to_string(chunk);
      digits = std::string(19 - part.size(), '0') + part + digits;
    }
  }
  return digits;
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

}  // namespace congestbc
