#include "bignum/big_rational.hpp"

#include <cmath>
#include <utility>

#include "common/assert.hpp"

namespace congestbc {

namespace {

/// Number of trailing zero bits (precondition: value != 0).
std::size_t trailing_zeros(const BigUint& value) {
  std::size_t count = 0;
  while (!value.bit(count)) {
    ++count;
  }
  return count;
}

}  // namespace

BigUint gcd(BigUint a, BigUint b) {
  if (a.is_zero()) {
    return b;
  }
  if (b.is_zero()) {
    return a;
  }
  const std::size_t za = trailing_zeros(a);
  const std::size_t zb = trailing_zeros(b);
  const std::size_t common = std::min(za, zb);
  a >>= za;
  b >>= zb;
  // Both odd from here on.
  while (true) {
    if (a > b) {
      std::swap(a, b);
    }
    b -= a;  // b even now (odd - odd)
    if (b.is_zero()) {
      break;
    }
    b >>= trailing_zeros(b);
  }
  return a << common;
}

BigRational::BigRational(BigUint numerator, BigUint denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  CBC_EXPECTS(!den_.is_zero(), "zero denominator");
  reduce();
}

void BigRational::reduce() {
  if (num_.is_zero()) {
    den_ = BigUint(1);
    return;
  }
  const BigUint divisor = gcd(num_, den_);
  if (divisor > BigUint(1)) {
    // Division by a general BigUint is only needed here; do it via
    // shift-and-subtract long division on the (already huge) operands.
    auto divide = [](const BigUint& value, const BigUint& by) {
      // Classic binary long division.
      BigUint quotient;
      BigUint remainder;
      const std::size_t bits = value.bit_length();
      for (std::size_t i = bits; i > 0; --i) {
        remainder <<= 1;
        if (value.bit(i - 1)) {
          remainder += BigUint(1);
        }
        quotient <<= 1;
        if (remainder >= by) {
          remainder -= by;
          quotient += BigUint(1);
        }
      }
      return quotient;
    };
    num_ = divide(num_, divisor);
    den_ = divide(den_, divisor);
  }
}

BigRational& BigRational::operator+=(const BigRational& other) {
  num_ = num_ * other.den_ + other.num_ * den_;
  den_ = den_ * other.den_;
  reduce();
  return *this;
}

BigRational& BigRational::operator*=(const BigRational& other) {
  num_ *= other.num_;
  den_ *= other.den_;
  reduce();
  return *this;
}

BigRational& BigRational::operator/=(const BigRational& other) {
  CBC_EXPECTS(!other.is_zero(), "division by zero");
  num_ *= other.den_;
  den_ *= other.num_;
  reduce();
  return *this;
}

BigRational BigRational::reciprocal() const {
  CBC_EXPECTS(!is_zero(), "reciprocal of zero");
  return BigRational(den_, num_);
}

int BigRational::compare(const BigRational& other) const {
  const BigUint lhs = num_ * other.den_;
  const BigUint rhs = other.num_ * den_;
  return lhs.compare(rhs);
}

double BigRational::to_double() const {
  if (num_.is_zero()) {
    return 0.0;
  }
  const auto [yn, en] = num_.frexp();
  const auto [yd, ed] = den_.frexp();
  return std::ldexp(yn / yd, static_cast<int>(en - ed));
}

std::string BigRational::to_string() const {
  if (den_ == BigUint(1)) {
    return num_.to_decimal();
  }
  return num_.to_decimal() + "/" + den_.to_decimal();
}

}  // namespace congestbc
