// Arbitrary-precision unsigned integers.
//
// The number of shortest paths sigma_st on an N-node graph can be as large
// as (N/D)^D (paper, Section V "Large Value Challenge") — far beyond 64
// bits.  The library's *distributed* algorithm never stores such values
// exactly (that is the point of the paper's soft-float), but the test and
// benchmark suites need exact reference counts to measure the soft-float's
// relative error against.  BigUint provides exactly the operations those
// reference computations need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace congestbc {

/// Non-negative arbitrary-precision integer with value semantics.
/// Representation: base-2^64 limbs, little-endian, no trailing zero limbs
/// (the value 0 is an empty limb vector).
class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a 64-bit value.
  explicit BigUint(std::uint64_t value);

  /// Parses a decimal string (digits only).  Throws PreconditionError on
  /// malformed input.
  static BigUint from_decimal(const std::string& text);

  /// 2^exponent.
  static BigUint pow2(std::size_t exponent);

  bool is_zero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for the value 0).
  std::size_t bit_length() const;

  /// Value of bit `index` (0 = least significant).
  bool bit(std::size_t index) const;

  BigUint& operator+=(const BigUint& other);
  BigUint& operator+=(std::uint64_t other);
  /// Subtraction; precondition: *this >= other.
  BigUint& operator-=(const BigUint& other);
  BigUint& operator*=(const BigUint& other);
  BigUint& operator<<=(std::size_t bits);
  BigUint& operator>>=(std::size_t bits);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator*(BigUint a, const BigUint& b) { return a *= b; }
  friend BigUint operator<<(BigUint a, std::size_t bits) { return a <<= bits; }
  friend BigUint operator>>(BigUint a, std::size_t bits) { return a >>= bits; }

  /// Three-way comparison: negative/zero/positive like memcmp.
  int compare(const BigUint& other) const;

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigUint& a, const BigUint& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUint& a, const BigUint& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return a.compare(b) >= 0;
  }

  /// Divides by a small divisor in place, returning the remainder.
  /// Precondition: divisor != 0.
  std::uint64_t div_mod_small(std::uint64_t divisor);

  /// Closest double (may overflow to +inf for gigantic values).
  double to_double() const;

  /// The value as y * 2^x with y in [0.5, 1); returns {y, x}.  For zero
  /// returns {0.0, 0}.  Exact within double precision of the top 53 bits.
  std::pair<double, std::int64_t> frexp() const;

  /// Fits in 64 bits?
  bool fits_u64() const { return limbs_.size() <= 1; }

  /// Low 64 bits (precondition: fits_u64()).
  std::uint64_t to_u64() const;

  /// Decimal representation.
  std::string to_decimal() const;

 private:
  void trim();

  std::vector<std::uint64_t> limbs_;
};

}  // namespace congestbc
