// Exact non-negative rational arithmetic on BigUint — the strongest
// ground truth available for betweenness values, which are sums of
// ratios of (exponentially large) path counts and hence exactly rational.
// brandes_bc_rational (central/) uses this to pin values like the paper's
// C_B(v2) = 7/2 with no floating point anywhere.
//
// Intended for validation-scale graphs: denominators grow quickly (they
// accumulate lcm-like products across the DAG), so keep N small.
#pragma once

#include <string>

#include "bignum/big_uint.hpp"

namespace congestbc {

/// gcd(a, b) via the binary (Stein) algorithm; gcd(0, b) = b.
BigUint gcd(BigUint a, BigUint b);

/// A non-negative rational in lowest terms (denominator >= 1).
class BigRational {
 public:
  /// Zero.
  BigRational() : num_(0), den_(1) {}

  /// numerator / denominator, reduced.  Precondition: denominator != 0.
  BigRational(BigUint numerator, BigUint denominator);

  /// Whole number.
  explicit BigRational(std::uint64_t value) : num_(value), den_(1) {}

  const BigUint& numerator() const { return num_; }
  const BigUint& denominator() const { return den_; }
  bool is_zero() const { return num_.is_zero(); }

  BigRational& operator+=(const BigRational& other);
  BigRational& operator*=(const BigRational& other);
  /// Precondition: other != 0.
  BigRational& operator/=(const BigRational& other);

  friend BigRational operator+(BigRational a, const BigRational& b) {
    return a += b;
  }
  friend BigRational operator*(BigRational a, const BigRational& b) {
    return a *= b;
  }
  friend BigRational operator/(BigRational a, const BigRational& b) {
    return a /= b;
  }

  /// 1 / *this.  Precondition: non-zero.
  BigRational reciprocal() const;

  /// Exact comparison.
  int compare(const BigRational& other) const;
  friend bool operator==(const BigRational& a, const BigRational& b) {
    return a.compare(b) == 0;
  }
  friend bool operator!=(const BigRational& a, const BigRational& b) {
    return a.compare(b) != 0;
  }
  friend bool operator<(const BigRational& a, const BigRational& b) {
    return a.compare(b) < 0;
  }
  friend bool operator>(const BigRational& a, const BigRational& b) {
    return a.compare(b) > 0;
  }

  double to_double() const;

  /// "p/q" (or "p" when q == 1).
  std::string to_string() const;

 private:
  void reduce();

  BigUint num_;
  BigUint den_;
};

}  // namespace congestbc
