#!/usr/bin/env python3
"""Diff two BENCH_simulator.json engine reports and fail on regression.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json [--tolerance 0.10]

Rows are matched on (graph, engine, threads).  For every pair present in
both files the candidate must keep rounds/sec and logical-messages/sec
within `tolerance` (default 10%) of the baseline, and must not grow the
per-run heap-allocation count by more than the same factor.  Rows present
in only one file are reported but never fatal, so a baseline produced
with `bench_simulator --baseline` (legacy engine only) can be compared
against a full report.

Oversubscribed rows — threads greater than the hardware_threads the row
(or, for old reports, the file header) records — carry no timing signal:
the lanes time-share cores, so wall-clock is scheduler noise.  Their
throughput metrics are skipped; heap allocations are deterministic and
are still compared.

Exit status: 0 = no regression, 1 = regression, 2 = bad input.
"""
from __future__ import annotations

import argparse
import json
import sys


def load_rows(path: str) -> dict[tuple[str, str, int], dict]:
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if report.get("benchmark") != "congest-simulator-engine":
        sys.exit(f"bench_compare: {path} is not a bench_simulator engine report")
    header_hw = int(report.get("hardware_threads", 0))
    rows = {}
    for row in report.get("rows", []):
        key = (row["graph"], row["engine"], int(row["threads"]))
        # Pre-frontier reports carried hardware_threads only in the header.
        row.setdefault("hardware_threads", header_hw)
        rows[key] = row
    if not rows:
        sys.exit(f"bench_compare: {path} has no rows")
    return rows


def oversubscribed(row: dict) -> bool:
    hw = int(row.get("hardware_threads", 0))
    return hw != 0 and int(row["threads"]) > hw


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)
    tol = args.tolerance

    regressions = []
    compared = 0
    skipped_timing = 0
    for key in sorted(base):
        if key not in cand:
            print(f"  (only in baseline: {key})")
            continue
        b, c = base[key], cand[key]
        compared += 1
        label = f"{key[0]}/{key[1]}/threads={key[2]}"
        if oversubscribed(b) or oversubscribed(c):
            skipped_timing += 1
        else:
            for metric in ("rounds_per_sec", "messages_per_sec"):
                if c[metric] < b[metric] * (1.0 - tol):
                    regressions.append(
                        f"{label}: {metric} {b[metric]:.1f} -> {c[metric]:.1f} "
                        f"({c[metric] / b[metric] - 1.0:+.1%})")
        if c["heap_allocations"] > b["heap_allocations"] * (1.0 + tol):
            regressions.append(
                f"{label}: heap_allocations {b['heap_allocations']} -> "
                f"{c['heap_allocations']}")
    for key in sorted(set(cand) - set(base)):
        print(f"  (only in candidate: {key})")

    if compared == 0:
        sys.exit("bench_compare: no comparable rows between the two reports")
    if regressions:
        print(f"REGRESSION ({len(regressions)} metric(s) past "
              f"{tol:.0%} tolerance):")
        for r in regressions:
            print(f"  {r}")
        return 1
    note = (f" ({skipped_timing} oversubscribed row(s): timing skipped, "
            f"allocations checked)" if skipped_timing else "")
    print(f"OK: {compared} row(s) compared, none regressed past "
          f"{tol:.0%}{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
