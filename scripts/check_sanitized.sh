#!/usr/bin/env bash
# Sanitized runs of the code that sanitizers pay for:
#
#   * ASan+UBSan (build-asan): the fault-injection suite (ctest label
#     "faults") plus the engine suites (label "perf": arena determinism
#     and the frontier identity matrix, which runs the new sparse-ER and
#     BA generators at sanitizer-sized node counts) — the fault/
#     reliable-transport layer moves raw payload bytes across rounds, and
#     the arena/lane engines hand out spans into recycled block memory — plus
#     the snapshot suite (label "snapshot"), whose corruption fuzz feeds
#     hostile bytes straight into the restore parsers, plus the service
#     suite (label "service"), whose framing fuzz feeds hostile bytes
#     into the daemon's wire-protocol decoder, plus the observability
#     suite (label "obs"), whose exporters walk recorder snapshots, plus
#     the chaos suite (label "chaos"), which tears, corrupts, and cuts
#     live sockets mid-frame and kill -9s the daemon mid-job, plus the
#     stream suite (label "stream"), whose mutation batches and journal
#     replay rewrite live adjacency and delta logs in place, plus the
#     portfolio suite (label "portfolio"), whose backend matrix drives
#     every algorithm (paper-exact, cfp, directed, sampled) through the
#     shared dispatch path, plus the cluster suite (label "cluster"),
#     whose router fans frames across worker links while draining
#     workers MIGRATE snapshots and result blocks through it — exactly
#     the paths where a stale pointer or overflow would hide.  The
#     1000-socket loadgen scale run is excluded: a thousand sanitized
#     threads on a shared runner measures the scheduler, not the code.
#   * TSan (build-tsan): the engine, fault, snapshot, service, obs,
#     chaos, and stream suites — the parallel node-execution phase must be
#     data-race-free for any lane count (including the frontier engine's
#     per-lane arena/outbox dispatch, which the identity tests force to
#     multi-lane even on one core, and when resumed mid-run
#     from a snapshot), the daemon's io-thread/worker-pool scheduler
#     likewise, the flight recorder's lock-free ring is hammered from
#     concurrent lanes (and the recorder-on/off bit-identity tests run
#     with all threads), the chaos proxy's relay threads and the retry
#     loop race connect/close against injected RSTs, and TSan is the
#     proof the determinism tests cannot give.
#
# Usage:
#   scripts/check_sanitized.sh [BUILD_DIR_PREFIX] [extra ctest args...]
# BUILD_DIR_PREFIX defaults to "<repo>/build"; the script uses
# "<prefix>-asan" and "<prefix>-tsan".
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-$repo_root/build}"
shift || true

echo "=== stage 1: address,undefined ==="
cmake -S "$repo_root" -B "$prefix-asan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCONGESTBC_SANITIZE=address,undefined
cmake --build "$prefix-asan" -j"$(nproc)" --target fault_test fuzz_test engine_test frontier_test snapshot_test \
  fingerprint_test service_protocol_test service_cache_test service_test \
  chaos_test stream_test obs_test obs_golden_test portfolio_test portfolio_sweep_test \
  cluster_test congestbcd congestbc_router congestbc_client chaosproxy
(cd "$prefix-asan" && ctest -L 'faults|perf|snapshot|service|obs|chaos|stream|portfolio|cluster' \
  -E 'cluster_loadgen_scale' --output-on-failure "$@")
echo "sanitized (asan) fault+engine+snapshot+service+obs+chaos+stream+portfolio+cluster suites: OK"

echo "=== stage 2: thread ==="
cmake -S "$repo_root" -B "$prefix-tsan" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCONGESTBC_SANITIZE=thread
cmake --build "$prefix-tsan" -j"$(nproc)" --target engine_test frontier_test fault_test snapshot_test \
  fingerprint_test service_protocol_test service_cache_test service_test \
  chaos_test stream_test obs_test obs_golden_test portfolio_test portfolio_sweep_test \
  cluster_test congestbcd congestbc_router congestbc_client chaosproxy
(cd "$prefix-tsan" && ctest -L 'faults|perf|snapshot|service|obs|chaos|stream|portfolio|cluster' \
  -E 'cluster_loadgen_scale' --output-on-failure "$@")
echo "sanitized (tsan) engine+fault+snapshot+service+obs+chaos+stream+portfolio+cluster suites: OK"
