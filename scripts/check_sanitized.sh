#!/usr/bin/env bash
# Builds the repo with AddressSanitizer + UBSan in a separate build tree
# and runs the fault-injection test suite (ctest label "faults") under it.
# The fault/reliable-transport layer moves raw payload bytes and juggles
# message lifetimes across rounds — exactly the code that sanitizers pay
# for.  Usage:
#   scripts/check_sanitized.sh [BUILD_DIR] [extra ctest args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"
shift || true

cmake -S "$repo_root" -B "$build_dir" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCONGESTBC_SANITIZE=address,undefined
cmake --build "$build_dir" -j"$(nproc)" --target fault_test fuzz_test

cd "$build_dir"
ctest -L faults --output-on-failure "$@"
echo "sanitized fault suite: OK"
